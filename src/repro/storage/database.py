"""Databases: immutable mappings from predicate names to relations.

A :class:`Database` is the extensional database (EDB) the evaluation
engine runs against.  Looking up a predicate that has no stored relation
returns an empty relation of the requested arity, which matches the
logic-programming convention that unknown facts are false.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.datalog.atoms import Predicate
from repro.datalog.programs import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.exceptions import SchemaError
from repro.storage.index import HashIndex
from repro.storage.relation import Relation, Row


@dataclass(frozen=True)
class Database:
    """An immutable collection of named relations."""

    relations: Mapping[str, Relation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", dict(self.relations))
        object.__setattr__(self, "_index_cache", {})
        object.__setattr__(self, "_index_lock", threading.Lock())
        for name, relation in self.relations.items():
            if relation.name != name:
                raise SchemaError(
                    f"Relation stored under {name!r} is named {relation.name!r}"
                )

    def __reduce__(self) -> tuple:
        """Pickle only the relations; caches and the lock are rebuilt.

        The process-backend executor ships a database to each worker once
        per pool; every worker then owns an independent index cache.
        """
        return (Database, (dict(self.relations),))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *relations: Relation) -> "Database":
        """Build a database from relations (names must be unique)."""
        mapping: dict[str, Relation] = {}
        for relation in relations:
            if relation.name in mapping:
                raise SchemaError(f"Duplicate relation name {relation.name!r}")
            mapping[relation.name] = relation
        return cls(mapping)

    @classmethod
    def from_facts(cls, facts: Iterable[Rule]) -> "Database":
        """Build a database from ground facts (rules with empty bodies)."""
        rows_by_name: dict[str, set[Row]] = {}
        arities: dict[str, int] = {}
        for fact in facts:
            if fact.body:
                raise SchemaError(f"Not a fact: {fact}")
            if not fact.head.is_ground():
                raise SchemaError(f"Fact contains variables: {fact}")
            name = fact.head.predicate.name
            arity = fact.head.predicate.arity
            if arities.setdefault(name, arity) != arity:
                raise SchemaError(f"Inconsistent arity for predicate {name}")
            row = tuple(
                term.value if isinstance(term, Constant) else term
                for term in fact.head.arguments
            )
            rows_by_name.setdefault(name, set()).add(row)
        return cls(
            {
                name: Relation(name, arities[name], frozenset(rows))
                for name, rows in rows_by_name.items()
            }
        )

    @classmethod
    def from_program(cls, program: Program) -> "Database":
        """Build a database from the facts of a parsed program."""
        return cls.from_facts(program.facts())

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def relation(self, name: str, arity: int | None = None) -> Relation:
        """Return the relation for *name*.

        If it is not stored and *arity* is given, an empty relation of that
        arity is returned; if it is not stored and no arity is given a
        :class:`SchemaError` is raised.
        """
        stored = self.relations.get(name)
        if stored is not None:
            if arity is not None and stored.arity != arity:
                raise SchemaError(
                    f"Relation {name} has arity {stored.arity}, expected {arity}"
                )
            return stored
        if arity is None:
            raise SchemaError(f"Unknown relation {name!r} and no arity given")
        return Relation.empty(name, arity)

    def relation_for(self, predicate: Predicate) -> Relation:
        """Return the relation for a predicate (empty if absent)."""
        return self.relation(predicate.name, predicate.arity)

    def index(self, name: str, arity: int, positions: tuple[int, ...]) -> HashIndex:
        """Return a cached :class:`HashIndex` over a stored relation.

        Relations are immutable, so an index is valid for as long as the
        *same relation object* is stored under its name; the cache is
        keyed by ``(relation name, arity, indexed positions)`` and
        survives across fixpoint iterations.  Functional updates
        (:meth:`with_relation` and friends) produce a *new* database with
        a fresh, empty cache — but ``relations`` is an ordinary dict, and
        a caller that swaps a relation in place under an existing name
        would otherwise keep hitting the stale index.  Each cache entry
        therefore records the relation it was built over and is rebuilt
        whenever the stored object changes (an identity generation
        check).  Override relations (per-iteration deltas) must not be
        indexed here; the executor indexes those per evaluation.

        The key includes *arity* so a wrong-arity request can never hit
        an index cached under the correct arity: it always reaches
        :meth:`relation`, which raises :class:`SchemaError`.

        Thread-safe: concurrent lookups from the thread-backend executor
        build under a lock, so each index is constructed at most once per
        stored relation generation.
        """
        cache: dict[tuple[str, int, tuple[int, ...]], HashIndex] = self._index_cache  # type: ignore[attr-defined]
        key = (name, arity, positions)
        stored = self.relation(name, arity)

        def valid(index: HashIndex | None) -> bool:
            # An absent name yields a fresh empty relation per call, so
            # identity cannot hold; an empty cached index is still valid.
            if index is None:
                return False
            if index.relation is stored:
                return True
            return name not in self.relations and not index.relation.rows

        index = cache.get(key)
        if valid(index):
            return index  # type: ignore[return-value]
        lock: threading.Lock = self._index_lock  # type: ignore[attr-defined]
        with lock:
            index = cache.get(key)
            if not valid(index):
                index = HashIndex(stored, positions)
                cache[key] = index
        return index  # type: ignore[return-value]

    def has_relation(self, name: str) -> bool:
        """True if a relation named *name* is stored."""
        return name in self.relations

    def names(self) -> frozenset[str]:
        """Names of all stored relations."""
        return frozenset(self.relations)

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(relation) for relation in self.relations.values())

    def active_domain(self) -> frozenset[Any]:
        """All values appearing in any relation."""
        return frozenset(
            value for relation in self.relations.values() for value in relation.active_domain()
        )

    # ------------------------------------------------------------------
    # Update (functional)
    # ------------------------------------------------------------------

    def with_relation(self, relation: Relation) -> "Database":
        """Return a database with *relation* added or replaced."""
        updated = dict(self.relations)
        updated[relation.name] = relation
        return Database(updated)

    def without_relation(self, name: str) -> "Database":
        """Return a database with the named relation removed."""
        updated = dict(self.relations)
        updated.pop(name, None)
        return Database(updated)

    def merge(self, other: "Database") -> "Database":
        """Union the relations of two databases (row-wise for shared names)."""
        updated = dict(self.relations)
        for name, relation in other.relations.items():
            if name in updated:
                updated[name] = updated[name].union(relation)
            else:
                updated[name] = relation
        return Database(updated)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def __str__(self) -> str:
        parts = ", ".join(str(relation) for relation in self.relations.values())
        return f"Database({parts})"
