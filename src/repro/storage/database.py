"""Databases: immutable mappings from predicate names to relations.

A :class:`Database` is the extensional database (EDB) the evaluation
engine runs against.  Looking up a predicate that has no stored relation
returns an empty relation of the requested arity, which matches the
logic-programming convention that unknown facts are false.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.datalog.atoms import Predicate
from repro.datalog.programs import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.exceptions import SchemaError
from repro.storage.domain import Domain, IntIndex, InternedRelation
from repro.storage.index import HashIndex
from repro.storage.relation import (
    Relation,
    Row,
    rows_added_since,
    rows_removed_since,
)


@dataclass(frozen=True)
class Database:
    """An immutable collection of named relations."""

    relations: Mapping[str, Relation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", dict(self.relations))
        object.__setattr__(self, "_index_cache", {})
        object.__setattr__(self, "_index_lock", threading.Lock())
        object.__setattr__(self, "_domain", None)
        object.__setattr__(self, "_interned_cache", {})
        object.__setattr__(self, "_int_index_cache", {})
        for name, relation in self.relations.items():
            if relation.name != name:
                raise SchemaError(
                    f"Relation stored under {name!r} is named {relation.name!r}"
                )

    def __reduce__(self) -> tuple:
        """Pickle only the relations; caches and the lock are rebuilt.

        The process-backend executor ships a database to each worker once
        per pool; every worker then owns an independent index cache.
        """
        return (Database, (dict(self.relations),))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *relations: Relation) -> "Database":
        """Build a database from relations (names must be unique)."""
        mapping: dict[str, Relation] = {}
        for relation in relations:
            if relation.name in mapping:
                raise SchemaError(f"Duplicate relation name {relation.name!r}")
            mapping[relation.name] = relation
        return cls(mapping)

    @classmethod
    def from_facts(cls, facts: Iterable[Rule]) -> "Database":
        """Build a database from ground facts (rules with empty bodies)."""
        rows_by_name: dict[str, set[Row]] = {}
        arities: dict[str, int] = {}
        for fact in facts:
            if fact.body:
                raise SchemaError(f"Not a fact: {fact}")
            if not fact.head.is_ground():
                raise SchemaError(f"Fact contains variables: {fact}")
            name = fact.head.predicate.name
            arity = fact.head.predicate.arity
            if arities.setdefault(name, arity) != arity:
                raise SchemaError(f"Inconsistent arity for predicate {name}")
            row = tuple(
                term.value if isinstance(term, Constant) else term
                for term in fact.head.arguments
            )
            rows_by_name.setdefault(name, set()).add(row)
        return cls(
            {
                name: Relation(name, arities[name], frozenset(rows))
                for name, rows in rows_by_name.items()
            }
        )

    @classmethod
    def from_program(cls, program: Program) -> "Database":
        """Build a database from the facts of a parsed program."""
        return cls.from_facts(program.facts())

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def relation(self, name: str, arity: int | None = None) -> Relation:
        """Return the relation for *name*.

        If it is not stored and *arity* is given, an empty relation of that
        arity is returned; if it is not stored and no arity is given a
        :class:`SchemaError` is raised.
        """
        stored = self.relations.get(name)
        if stored is not None:
            if arity is not None and stored.arity != arity:
                raise SchemaError(
                    f"Relation {name} has arity {stored.arity}, expected {arity}"
                )
            return stored
        if arity is None:
            raise SchemaError(f"Unknown relation {name!r} and no arity given")
        return Relation.empty(name, arity)

    def relation_for(self, predicate: Predicate) -> Relation:
        """Return the relation for a predicate (empty if absent)."""
        return self.relation(predicate.name, predicate.arity)

    def index(self, name: str, arity: int, positions: tuple[int, ...]) -> HashIndex:
        """Return a cached :class:`HashIndex` over a stored relation.

        Relations are immutable, so an index is valid for as long as the
        *same relation object* is stored under its name; the cache is
        keyed by ``(relation name, arity, indexed positions)`` and
        survives across fixpoint iterations.  Functional updates
        (:meth:`with_relation` and friends) produce a *new* database with
        a fresh, empty cache — but ``relations`` is an ordinary dict, and
        a caller that swaps a relation in place under an existing name
        would otherwise keep hitting the stale index.  Each cache entry
        therefore records the relation it was built over and is rebuilt
        whenever the stored object changes (an identity generation
        check).  Override relations (per-iteration deltas) must not be
        indexed here; the executor indexes those per evaluation.

        The key includes *arity* so a wrong-arity request can never hit
        an index cached under the correct arity: it always reaches
        :meth:`relation`, which raises :class:`SchemaError`.

        Thread-safe: concurrent lookups from the thread-backend executor
        build under a lock, so each index is constructed at most once per
        stored relation generation.
        """
        cache: dict[tuple[str, int, tuple[int, ...]], HashIndex] = self._index_cache  # type: ignore[attr-defined]
        key = (name, arity, positions)
        stored = self.relation(name, arity)

        def valid(index: HashIndex | None) -> bool:
            # An absent name yields a fresh empty relation per call, so
            # identity cannot hold; an empty cached index is still valid.
            if index is None:
                return False
            if index.relation is stored:
                return True
            return name not in self.relations and not index.relation.rows

        index = cache.get(key)
        if valid(index):
            return index  # type: ignore[return-value]
        lock: threading.Lock = self._index_lock  # type: ignore[attr-defined]
        with lock:
            index = cache.get(key)
            if not valid(index):
                # Generation-aware maintenance: a caller that swapped in
                # a *grown* generation of the same relation (the
                # extension lineage of ``Relation.extended_with``) gets
                # the cached index updated from the added rows alone; a
                # *shrunk* generation (a subset of the indexed rows, the
                # maintenance engine's delete phase) gets the removed
                # rows deleted from their buckets.  Anything else is a
                # rebuild.
                added = (None if index is None
                         else rows_added_since(stored, index.relation))
                removed = (None if index is None or added is not None
                           else rows_removed_since(stored, index.relation))
                if added is not None:
                    index.extend(added, stored)  # type: ignore[union-attr]
                elif removed is not None and (
                        len(removed) * 4 <= len(stored.rows) + 8):
                    index.shrink(removed, stored)  # type: ignore[union-attr]
                else:
                    index = HashIndex(stored, positions)
                    cache[key] = index
        return index  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Interned access (the dictionary-encoded execution path)
    # ------------------------------------------------------------------

    def domain(self) -> Domain:
        """The database's value interner, created lazily.

        One :class:`~repro.storage.domain.Domain` per database: every
        interned structure over this database's relations shares it, so
        ids are comparable across relations.  Like the index cache it is
        not part of the pickled state — process workers either rebuild
        it or are seeded explicitly to reproduce the parent's ids.
        """
        domain: Domain | None = self._domain  # type: ignore[attr-defined]
        if domain is not None:
            return domain
        lock: threading.Lock = self._index_lock  # type: ignore[attr-defined]
        with lock:
            domain = self._domain  # type: ignore[attr-defined]
            if domain is None:
                domain = Domain()
                object.__setattr__(self, "_domain", domain)
        return domain

    def interned_relation(self, name: str, arity: int) -> InternedRelation:
        """The cached canonical interned form of a stored relation.

        Validity mirrors :meth:`index`: the form is keyed to the stored
        relation object, survives across fixpoint iterations, follows
        the extension lineage incrementally when the stored generation
        grows, and is rebuilt on any other change.
        """
        cache: dict[tuple[str, int], tuple[Relation, InternedRelation]] = (
            self._interned_cache  # type: ignore[attr-defined]
        )
        key = (name, arity)
        stored = self.relation(name, arity)
        entry = cache.get(key)
        if entry is not None and (
            entry[0] is stored
            or (name not in self.relations and not entry[0].rows)
        ):
            return entry[1]
        domain = self.domain()  # resolved before taking the cache lock
        lock: threading.Lock = self._index_lock  # type: ignore[attr-defined]
        with lock:
            entry = cache.get(key)
            if entry is not None and entry[0] is stored:
                return entry[1]
            added = (None if entry is None
                     else rows_added_since(stored, entry[0]))
            if added is not None and entry is not None:
                interned = entry[1]
                start = interned.length
                interned.extend_with(added, domain)
                self._extend_int_indexes(name, arity, interned, start)
            else:
                # Delete fast path: a swap that only shrank the stored
                # rows (the IVM working database after a delete batch)
                # filters the cached columns instead of re-interning
                # every surviving value.  Positions shift, so the int
                # indexes are dropped for rebuild either way.
                removed = (None if entry is None
                           else rows_removed_since(stored, entry[0]))
                if removed is not None and entry is not None:
                    interned = entry[1].without_rows(removed, domain)
                else:
                    interned = InternedRelation.from_relation(stored, domain)
                self._drop_int_indexes(name, arity)
            cache[key] = (stored, interned)
        return interned

    def interned_index(self, name: str, arity: int,
                       key_positions: tuple[int, ...],
                       payload_positions: tuple[int, ...]) -> IntIndex:
        """A cached int-keyed index over a stored relation's interned form.

        Keyed by ``(name, arity, key positions, payload positions)``;
        kept consistent with :meth:`interned_relation` — growing the
        stored generation extends every cached index from the new rows,
        any other change drops them for rebuild.
        """
        interned = self.interned_relation(name, arity)
        cache: dict[tuple, IntIndex] = self._int_index_cache  # type: ignore[attr-defined]
        key = (name, arity, key_positions, payload_positions)
        index = cache.get(key)
        if index is not None and index.length == interned.length:
            return index
        lock: threading.Lock = self._index_lock  # type: ignore[attr-defined]
        with lock:
            index = cache.get(key)
            if index is None or index.length != interned.length:
                index = IntIndex(interned, key_positions, payload_positions)
                cache[key] = index
        return index

    def _extend_int_indexes(self, name: str, arity: int,
                            interned: InternedRelation, start: int) -> None:
        """Append rows ``start..`` of *interned* to its cached indexes."""
        cache: dict[tuple, IntIndex] = self._int_index_cache  # type: ignore[attr-defined]
        for key, index in cache.items():
            if key[0] == name and key[1] == arity:
                index.extend_from_columns(interned.columns, start,
                                          interned.length)

    def _drop_int_indexes(self, name: str, arity: int) -> None:
        """Forget cached int indexes for a rebuilt interned relation."""
        cache: dict[tuple, IntIndex] = self._int_index_cache  # type: ignore[attr-defined]
        for key in [key for key in cache if key[0] == name and key[1] == arity]:
            del cache[key]

    def prime_storage(self, domain: Domain,
                      interned: Mapping[str, InternedRelation]) -> None:
        """Adopt a recovered domain and pre-built interned forms.

        The checkpoint loader (:mod:`repro.durability.checkpoint`)
        rebuilds the value interner and the canonical interned columns
        straight off the mmap'd file; seeding them here makes "open the
        database" skip re-interning entirely — the interned executor's
        first probe finds warm columns, and ids stay identical to the
        checkpointed run.  Must be called before anything else touches
        :meth:`domain` (a database that already interned values has an
        id space the checkpoint's ids would clash with), and each
        interned form must describe the stored relation of its name.
        """
        lock: threading.Lock = self._index_lock  # type: ignore[attr-defined]
        with lock:
            if self._domain is not None:  # type: ignore[attr-defined]
                raise SchemaError(
                    "prime_storage() must run before the database interns "
                    "anything; this database already has a live domain"
                )
            object.__setattr__(self, "_domain", domain)
            cache: dict[tuple[str, int], tuple[Relation, InternedRelation]] = (
                self._interned_cache  # type: ignore[attr-defined]
            )
            for name, form in interned.items():
                stored = self.relations.get(name)
                if stored is None or len(stored.rows) != form.length:
                    raise SchemaError(
                        f"Interned form of {name!r} does not match the "
                        f"stored relation"
                    )
                cache[(name, form.arity)] = (stored, form)

    def intern_all(self) -> None:
        """Intern every stored relation into the database's domain.

        Builds (or incrementally extends) the canonical interned form of
        each relation, so the domain afterwards contains every value the
        EDB can contribute.  The packed closure and the process-backend
        worker seeding both run this before freezing a packing base or
        snapshotting the domain.
        """
        for relation in self.relations.values():
            self.interned_relation(relation.name, relation.arity)

    def has_relation(self, name: str) -> bool:
        """True if a relation named *name* is stored."""
        return name in self.relations

    def names(self) -> frozenset[str]:
        """Names of all stored relations."""
        return frozenset(self.relations)

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(relation) for relation in self.relations.values())

    def active_domain(self) -> frozenset[Any]:
        """All values appearing in any relation."""
        return frozenset(
            value for relation in self.relations.values() for value in relation.active_domain()
        )

    # ------------------------------------------------------------------
    # Update (functional)
    # ------------------------------------------------------------------

    def replace_relation(self, relation: Relation) -> None:
        """Swap *relation* in place under its name.  Deprecated.

        In-place swapping mutates a database that readers may be
        evaluating against concurrently; the serving layer replaces it
        with transactional mutation through
        :class:`repro.serve.Session`, which maintains materialised
        results incrementally and publishes immutable snapshots.  The
        index/interned caches self-heal via their generation checks, so
        this remains *correct* for single-threaded use — but new code
        should not reach for it.
        """
        warnings.warn(
            "Database.replace_relation mutates a shared database in "
            "place; use repro.serve.Session (engine.transaction()) for "
            "mutations in serving paths, or Database.with_relation for "
            "a functional copy",
            DeprecationWarning,
            stacklevel=2,
        )
        self._replace_relation_unchecked(relation)

    def _replace_relation_unchecked(self, relation: Relation) -> None:
        """In-place swap without the deprecation gate.

        Reserved for owners of a *private* database — the IVM engine
        mutates its working database through this and relies on the
        generation checks in :meth:`index`/:meth:`interned_relation` to
        extend caches incrementally (grown lineage) or rebuild them
        (deletes).
        """
        if relation.name in self.relations and (
            self.relations[relation.name].arity != relation.arity
        ):
            raise SchemaError(
                f"Relation {relation.name!r} has arity "
                f"{self.relations[relation.name].arity}, cannot swap in "
                f"arity {relation.arity}"
            )
        self.relations[relation.name] = relation  # type: ignore[index]

    def with_relation(self, relation: Relation) -> "Database":
        """Return a database with *relation* added or replaced."""
        updated = dict(self.relations)
        updated[relation.name] = relation
        return Database(updated)

    def without_relation(self, name: str) -> "Database":
        """Return a database with the named relation removed."""
        updated = dict(self.relations)
        updated.pop(name, None)
        return Database(updated)

    def merge(self, other: "Database") -> "Database":
        """Union the relations of two databases (row-wise for shared names)."""
        updated = dict(self.relations)
        for name, relation in other.relations.items():
            if name in updated:
                updated[name] = updated[name].union(relation)
            else:
                updated[name] = relation
        return Database(updated)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def __str__(self) -> str:
        parts = ", ".join(str(relation) for relation in self.relations.values())
        return f"Database({parts})"
