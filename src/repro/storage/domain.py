"""Domain interning: dictionary-encoding values into dense integer ids.

The paper's relational model is *typeless*: a relation's schema is just
its arity, and the values inside tuples are opaque — evaluation only
ever compares them for equality.  That licenses dictionary encoding:
every value appearing anywhere in a database can be mapped to a dense
``int`` id, and the whole scan/probe/filter/head pipeline can run on
ids alone, decoding back to values only at the edges.  Equality of ids
is equivalent to equality of values (the mapping is injective), so
results, derivation/duplicate counts, and join counters are exactly
those of the value-level executors.

Three pieces live here:

:class:`Domain`
    A per-:class:`~repro.storage.database.Database` interner: an
    append-only, thread-safe bijection ``value ↔ id``.  Ids are dense
    (``0 .. len-1``) and never change once assigned, so any structure
    built over interned ids stays valid as the domain grows.

:class:`InternedRelation`
    A relation's canonical interned form: one ``array('q')`` per column,
    row-aligned.  Arrays hold machine-width ints in a flat buffer, so
    an interned relation is compact in memory, cheap to ship to process
    workers (an array pickles as raw bytes), and supports an
    *incremental append* path (:meth:`InternedRelation.extend_with`) so
    a growing relation's interned form is maintained from the new rows
    instead of rebuilt.

:class:`IntIndex`
    A hash index over interned columns with int-keyed buckets: a
    single-column key probes with a raw ``int`` (no per-probe tuple
    allocation), a multi-column key with a tuple of ids.  Each bucket
    holds the *payload* the executor statically needs from matching
    rows — the pre-projected bind/check/head positions — so the probe
    loop never touches whole rows.  Indexes support the same
    incremental append path as the columns they are built over.
"""

from __future__ import annotations

import threading
from array import array
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.storage.relation import Relation, Row


class Domain:
    """An append-only, thread-safe bijection between values and dense ids.

    ``intern`` assigns the next free id to an unseen value and returns
    the existing id otherwise; ``value_of`` inverts.  Ids are assigned
    in first-intern order, so two domains seeded with the same value
    sequence (:meth:`seed`) assign identical ids — this is how process
    workers reconstruct the parent's id space.
    """

    __slots__ = ("_ids", "_values", "_lock")

    def __init__(self, values: Iterable[Any] = ()):
        self._ids: dict[Any, int] = {}
        self._values: list[Any] = []
        self._lock = threading.Lock()
        for value in values:
            self.intern(value)

    def intern(self, value: Any) -> int:
        """The id of *value*, assigning the next dense id if unseen."""
        ident = self._ids.get(value)
        if ident is None:
            with self._lock:
                ident = self._ids.get(value)
                if ident is None:
                    ident = len(self._values)
                    self._values.append(value)
                    self._ids[value] = ident
        return ident

    def intern_row(self, row: Row) -> tuple[int, ...]:
        """The row with every value replaced by its id."""
        intern = self.intern
        return tuple(intern(value) for value in row)

    def value_of(self, ident: int) -> Any:
        """The value with id *ident* (ids are dense, starting at 0)."""
        return self._values[ident]

    def decode_row(self, ids: Sequence[int]) -> Row:
        """Ids back to a value tuple."""
        values = self._values
        return tuple(values[ident] for ident in ids)

    def values_view(self) -> Sequence[Any]:
        """The live id → value list (read-only; grows as values intern).

        The decode loops index this list directly; callers must treat it
        as immutable.  It only ever grows, so reads are safe alongside
        concurrent interning.
        """
        return self._values

    def values_snapshot(self, start: int = 0) -> list[Any]:
        """The values with ids ``start ..`` at the time of the call.

        Because the domain is append-only, a snapshot plus later tail
        snapshots fully describe the id assignment at any point; the
        process backend ships exactly these to keep worker domains in
        sync with the parent.
        """
        return self._values[start:]

    def seed(self, values: Sequence[Any]) -> None:
        """Intern *values* in order, reproducing another domain's ids.

        Seeding is idempotent: values already present must already
        carry the id their position implies (anything else means the
        two domains diverged, which is a programming error).
        """
        for position, value in enumerate(values):
            ident = self.intern(value)
            if ident != position:
                raise ValueError(
                    f"Domain seed mismatch at position {position}: "
                    f"{value!r} already has id {ident}"
                )

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return value in self._ids

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._values))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Domain({len(self._values)} values)"


class InternedRelation:
    """A relation's canonical interned form: ``array('q')`` columns.

    ``columns[p][j]`` is the id of row ``j``'s value at position ``p``;
    rows are in the source relation's iteration order at intern time.
    The form is append-only: :meth:`extend_with` interns new rows onto
    the end of every column, which is how a growing accumulated
    relation (e.g. the naive driver's total) keeps its interned view
    without per-iteration rebuilds.

    The canonical form holds ``array('q')`` columns (compact, pickles
    as raw bytes); hot execution paths may construct transient views
    over plain ``list[int]`` columns, which the executor treats
    identically (boxed ints are reused instead of re-created per read).
    """

    __slots__ = ("name", "arity", "length", "columns")

    def __init__(self, name: str, arity: int,
                 columns: Optional[tuple[Any, ...]] = None,
                 length: int = 0):
        self.name = name
        self.arity = arity
        self.columns: tuple[array, ...] = (
            columns if columns is not None
            else tuple(array("q") for _ in range(arity))
        )
        #: Row count; tracked explicitly because arity-0 relations have
        #: no columns to measure.
        self.length = length

    @classmethod
    def from_relation(cls, relation: Relation, domain: Domain) -> "InternedRelation":
        """Intern every row of *relation* (one pass per column)."""
        rows = list(relation.rows)
        intern = domain.intern
        columns = tuple(
            array("q", [intern(row[position]) for row in rows])
            for position in range(relation.arity)
        )
        return cls(relation.name, relation.arity, columns, len(rows))

    @classmethod
    def from_buffers(cls, name: str, arity: int,
                     columns: Sequence[Any],
                     length: int) -> "InternedRelation":
        """Wrap externally-owned int64 column buffers, zero-copy.

        The checkpoint loader (:mod:`repro.durability.checkpoint`) hands
        ``memoryview`` windows cast to ``'q'`` over an mmap'd file; the
        executor reads them exactly like ``array('q')`` columns (len,
        indexing, iteration), so opening a database never copies or
        re-interns column data.  The first mutation promotes the columns
        to private arrays (:meth:`materialise`), leaving the mapped file
        untouched.
        """
        columns = tuple(columns)
        for column in columns:
            if len(column) != length:
                raise ValueError(
                    f"Column buffer of {len(column)} ids does not match "
                    f"length {length}"
                )
        return cls(name, arity, columns, length)

    def materialise(self) -> None:
        """Replace borrowed column buffers with private ``array('q')``\\ s.

        Copy-on-write promotion for relations opened off an mmap'd
        checkpoint: reading never copies, but the append path
        (:meth:`extend_with`) needs mutable arrays, so the first append
        after open pays one memcpy per column and drops the reference
        into the mapped file.  A no-op for relations already backed by
        arrays.
        """
        if self.arity and not all(
            isinstance(column, array) for column in self.columns
        ):
            self.columns = tuple(
                column if isinstance(column, array) else array("q", column)
                for column in self.columns
            )

    @classmethod
    def from_flat(cls, name: str, arity: int, flat: array,
                  length: Optional[int] = None) -> "InternedRelation":
        """Rebuild from a row-major flat id buffer (the wire format).

        *length* is only needed for arity-0 relations, whose flat
        buffer is empty regardless of row count.
        """
        if arity == 0:
            return cls(name, 0, (), length if length is not None else 0)
        if len(flat) % arity:
            raise ValueError(
                f"Flat buffer of {len(flat)} ids is not a multiple of "
                f"arity {arity}"
            )
        length = len(flat) // arity
        columns = tuple(flat[position::arity] for position in range(arity))
        return cls(name, arity, columns, length)

    def to_flat(self) -> array:
        """Row-major flat id buffer (for shipping to process workers)."""
        flat = array("q", bytes(8 * self.length * self.arity))
        for position, column in enumerate(self.columns):
            if not isinstance(column, array):
                column = array("q", column)
            flat[position::self.arity] = column
        return flat

    def extend_with(self, rows: Iterable[Row], domain: Domain) -> None:
        """Append *rows* (interning their values) to every column."""
        self.materialise()
        intern = domain.intern
        count = 0
        if self.arity == 0:
            for _ in rows:
                count += 1
        else:
            columns = self.columns
            for row in rows:
                for column, value in zip(columns, row):
                    column.append(intern(value))
                count += 1
        self.length += count

    def without_rows(self, removed: Iterable[Row],
                     domain: Domain) -> "InternedRelation":
        """A new form with *removed* rows filtered out, ids preserved.

        The delete-path counterpart of :meth:`extend_with`: when a
        stored relation swap only shrank (the IVM working database
        after a delete batch — see
        ``repro.storage.relation.rows_removed_since``), the interned
        form is rebuilt by filtering the existing columns.  No
        surviving value is re-interned, surviving rows keep their
        relative order, and the domain is untouched (it is append-only;
        deleted values simply stop being referenced).
        """
        intern_row = domain.intern_row
        removed_ids = {intern_row(row) for row in removed}
        if self.arity == 0:
            length = max(self.length - len(removed_ids), 0)
            return InternedRelation(self.name, 0, (), length)
        columns = self.columns
        keep = [
            j for j in range(self.length)
            if tuple(column[j] for column in columns) not in removed_ids
        ]
        filtered = tuple(
            array("q", [column[j] for j in keep]) for column in columns
        )
        return InternedRelation(self.name, self.arity, filtered, len(keep))

    def __len__(self) -> int:
        return self.length

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"InternedRelation({self.name}/{self.arity}, {self.length} rows)"


def unpack_packed_columns(packed_rows: Iterable[int], base: int,
                          arity: int) -> tuple[list[int], ...]:
    """Packed row values back to column-wise id lists.

    The inverse of the packed closure's head packing
    (``sum(id_i * base**(arity-1-i))``): column ``p`` holds each row's
    digit at position ``p``, in the iteration order of *packed_rows*.
    Shared by the serial packed closure, the thread-backend packed
    tasks, and the shared-memory process workers, so every backend
    materialises identical column views from the same packed rows.
    The common low arities take a single-pass comprehension; the
    generic path peels base-``base`` digits.
    """
    if arity == 2:
        return ([packed // base for packed in packed_rows],
                [packed % base for packed in packed_rows])
    if arity == 1:
        return (list(packed_rows),)
    columns: tuple[list[int], ...] = tuple([] for _ in range(arity))
    for packed in packed_rows:
        for position in range(arity - 1, -1, -1):
            packed, ident = divmod(packed, base)
            columns[position].append(ident)
    return columns


#: An interned index key: a raw id for single-column keys, a tuple of
#: ids otherwise (the empty tuple keys a full scan).
IntKey = Union[int, tuple[int, ...]]


class IntIndex:
    """A hash index over interned columns with int-keyed buckets.

    ``key_positions`` selects the probed columns; a single position
    keys buckets by raw ``int``.  ``payload_positions`` selects what a
    bucket holds per matching row: a raw id for a single payload
    position, a tuple of ids for several — and for an *empty* payload
    the index is *counted*: buckets collapse to a bare ``int``
    multiplicity, which is all a probe that binds nothing needs.
    """

    __slots__ = ("name", "key_positions", "payload_positions", "buckets",
                 "length", "counted", "_premultiplied")

    def __init__(self, interned: InternedRelation,
                 key_positions: tuple[int, ...],
                 payload_positions: tuple[int, ...]):
        self.name = interned.name
        self.key_positions = key_positions
        self.payload_positions = payload_positions
        self.counted = not payload_positions
        self.buckets: dict[IntKey, Any] = {}
        self.length = 0
        #: coefficient → (length at build, buckets with payload * coeff).
        self._premultiplied: dict[int, tuple[int, dict[IntKey, list[int]]]] = {}
        self.extend_from_columns(interned.columns, 0, interned.length)

    def extend_from_columns(self, columns: tuple[array, ...],
                            start: int, stop: int) -> None:
        """Append rows ``start .. stop-1`` of *columns* (the append path).

        This is the incremental-maintenance entry point: when an
        interned relation grows (:meth:`InternedRelation.extend_with`),
        every index over it is updated from the new rows alone instead
        of being rebuilt from scratch.
        """
        if stop <= start:
            return
        buckets = self.buckets
        key_positions = self.key_positions
        payload_positions = self.payload_positions

        if len(key_positions) == 1:
            key_column = columns[key_positions[0]]
            keys: Iterable[IntKey] = (key_column[j] for j in range(start, stop))
        elif key_positions:
            key_columns = [columns[p] for p in key_positions]
            keys = (tuple(column[j] for column in key_columns)
                    for j in range(start, stop))
        else:
            keys = (() for _ in range(start, stop))

        if self.counted:
            for key in keys:
                buckets[key] = buckets.get(key, 0) + 1
        elif len(payload_positions) == 1:
            payload_column = columns[payload_positions[0]]
            for j, key in zip(range(start, stop), keys):
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [payload_column[j]]
                else:
                    bucket.append(payload_column[j])
        else:
            payload_columns = [columns[p] for p in payload_positions]
            for j, key in zip(range(start, stop), keys):
                payload = tuple(column[j] for column in payload_columns)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [payload]
                else:
                    bucket.append(payload)
        self.length += stop - start

    def lookup(self, key: IntKey) -> Any:
        """The bucket for *key*: a payload list, or a count when counted."""
        if self.counted:
            return self.buckets.get(key, 0)
        return self.buckets.get(key, [])

    def premultiplied(self, coeff: int) -> dict[IntKey, list[int]]:
        """Single-payload buckets with every id pre-multiplied by *coeff*.

        The packed head emission adds ``coeff * payload_id`` per probed
        row; pre-multiplying once per index turns that into a bare add
        inside the emission loop (and lets it run through C-level
        ``map``).  Cached per coefficient; a cache entry built over a
        shorter generation of the index is rebuilt on access, so the
        incremental append path stays correct without eagerly updating
        every derived view.
        """
        if coeff == 1:
            return self.buckets
        if self.counted or len(self.payload_positions) != 1:
            raise ValueError(
                "premultiplied() requires a single-payload index"
            )
        cached = self._premultiplied.get(coeff)
        if cached is not None and cached[0] == self.length:
            return cached[1]
        buckets = {
            key: [coeff * ident for ident in bucket]
            for key, bucket in self.buckets.items()
        }
        self._premultiplied[coeff] = (self.length, buckets)
        return buckets

    def __len__(self) -> int:
        return len(self.buckets)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"IntIndex({self.name}, key={self.key_positions}, "
            f"payload={self.payload_positions}, {len(self.buckets)} keys)"
        )
