"""Hash indexes over relation columns, used by the join engine.

An index maps a tuple of column values (for a chosen tuple of positions)
to the rows having those values.  The compiled join executor
(:mod:`repro.engine.plan`) obtains indexes over stored (EDB) relations
from the per-:class:`~repro.storage.database.Database` index cache, so an
index over an immutable relation is built once and reused across every
fixpoint iteration; only the per-iteration delta/override relations are
indexed afresh.

The empty position tuple is a legal index: every row lands in the single
bucket keyed by ``()``, so ``lookup(())`` is a full scan.  This is how
the executor handles a join step with no bound columns.

A :class:`HashIndex` is immutable after construction (its buckets are
only ever read), so one index may be shared freely across the threads of
the parallel executor; it also pickles cleanly for the process backend,
although the workers there prefer to rebuild indexes locally from the
shipped relations.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.storage.relation import Relation, Row


class HashIndex:
    """A hash index on a subset of a relation's columns."""

    def __init__(self, relation: Relation, positions: Iterable[int]):
        self.relation = relation
        self.positions = tuple(positions)
        self._buckets: dict[tuple[Any, ...], list[Row]] = {}
        if not self.positions:
            # Full-scan index: every row keys to the empty tuple.
            if relation.rows:
                self._buckets[()] = list(relation.rows)
            return
        buckets = self._buckets
        positions = self.positions
        for row in relation.rows:
            key = tuple(row[p] for p in positions)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)

    def lookup(self, key: Iterable[Any]) -> list[Row]:
        """Rows whose indexed columns equal *key* (in position order).

        Keys that are already tuples (the compiled executor's probe
        keys, including its compile-time-interned static keys) probe the
        bucket table directly; anything else is normalised first.
        """
        if type(key) is not tuple:
            key = tuple(key)
        return self._buckets.get(key, [])

    def extend(self, added: Iterable[Row], relation: Relation) -> None:
        """Append *added* rows and re-point the index at *relation*.

        The incremental maintenance path: when a relation grows by a
        known set of rows (the extension lineage of
        :meth:`repro.storage.relation.Relation.extended_with`), the
        index over the old generation is updated from the new rows
        alone instead of being rebuilt over the whole relation.  The
        caller guarantees *added* is exactly ``relation.rows`` minus
        the indexed generation's rows; the index mutates in place, so
        it must not be extended while another thread is probing it —
        :meth:`repro.storage.database.Database.index` performs
        extensions under the cache lock.
        """
        buckets = self._buckets
        positions = self.positions
        if not positions:
            bucket = buckets.get(())
            if bucket is None:
                bucket = buckets[()] = []
            bucket.extend(added)
            if not bucket:
                del buckets[()]
            self.relation = relation
            return
        for row in added:
            key = tuple(row[p] for p in positions)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)
        self.relation = relation

    def shrink(self, removed: Iterable[Row], relation: Relation) -> None:
        """Drop *removed* rows and re-point the index at *relation*.

        The deletion counterpart of :meth:`extend`, for the maintenance
        path where a relation loses a known set of rows
        (:func:`repro.storage.relation.rows_removed_since`): the index
        over the old generation is updated by deleting the removed rows
        from their buckets instead of being rebuilt over the whole
        relation.  The caller guarantees *removed* is exactly the
        indexed generation's rows minus ``relation.rows``; like
        :meth:`extend`, this mutates in place and must run under the
        database's cache lock.
        """
        buckets = self._buckets
        positions = self.positions
        for row in removed:
            key = tuple(row[p] for p in positions) if positions else ()
            bucket = buckets.get(key)
            if bucket is None:
                continue
            try:
                bucket.remove(row)
            except ValueError:
                continue
            if not bucket:
                del buckets[key]
        self.relation = relation

    @property
    def buckets(self) -> dict[tuple[Any, ...], list[Row]]:
        """The key → rows mapping itself (read-only by convention).

        The batch executor (:mod:`repro.engine.vectorized`) probes this
        mapping directly (``index.buckets.get``) inside its column loops,
        skipping the per-call tuple normalisation of :meth:`lookup`.
        Callers must not mutate the mapping or its bucket lists.
        """
        return self._buckets

    def lookup_batch(self, keys: Iterable[tuple[Any, ...]]) -> list[list[Row]]:
        """Bulk probe: one bucket (possibly empty) per key, in key order.

        Keys must already be tuples in position order.  This is the bulk
        counterpart of :meth:`lookup`; the batch executor probes
        multi-column join keys through it (single-column keys go through
        :attr:`buckets` directly).  The returned bucket lists are the
        index's own and must not be mutated.
        """
        get = self._buckets.get
        empty: list[Row] = []
        return [get(key, empty) for key in keys]

    def keys(self) -> Iterator[tuple[Any, ...]]:
        """Distinct keys present in the index."""
        return iter(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"HashIndex({self.relation.name}, positions={self.positions}, "
            f"{len(self._buckets)} keys)"
        )
