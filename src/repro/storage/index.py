"""Hash indexes over relation columns, used by the join engine.

An index maps a tuple of column values (for a chosen tuple of positions)
to the rows having those values.  The conjunctive-query evaluator builds
one index per body atom per join step, keyed by the positions that are
bound at that point of the join order.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.storage.relation import Relation, Row


class HashIndex:
    """A hash index on a subset of a relation's columns."""

    def __init__(self, relation: Relation, positions: Iterable[int]):
        self.relation = relation
        self.positions = tuple(positions)
        self._buckets: dict[tuple[Any, ...], list[Row]] = {}
        for row in relation.rows:
            key = tuple(row[p] for p in self.positions)
            self._buckets.setdefault(key, []).append(row)

    def lookup(self, key: Iterable[Any]) -> list[Row]:
        """Rows whose indexed columns equal *key* (in position order)."""
        return self._buckets.get(tuple(key), [])

    def keys(self) -> Iterator[tuple[Any, ...]]:
        """Distinct keys present in the index."""
        return iter(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"HashIndex({self.relation.name}, positions={self.positions}, "
            f"{len(self._buckets)} keys)"
        )
