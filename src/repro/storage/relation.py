"""Relations: named, fixed-arity sets of tuples.

Following the paper's typeless model, a relation's schema is just its
arity.  A :class:`Relation` is an immutable value: operations return new
relations.  Tuples contain plain Python values (the ``value`` payloads of
:class:`repro.datalog.terms.Constant`).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional

from repro.exceptions import SchemaError

if TYPE_CHECKING:
    from array import array

    from repro.storage.domain import Domain

Row = tuple[Any, ...]


@dataclass(frozen=True)
class Relation:
    """An immutable named relation with a fixed arity."""

    name: str
    arity: int
    rows: frozenset[Row] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        rows = self.rows
        # Rows that are already a frozenset of canonical tuples are kept
        # as-is: re-tupling them would re-allocate every row and re-hash
        # the whole set on each construction.  Validation still runs.
        if not isinstance(rows, frozenset) or not all(
            type(row) is tuple for row in rows
        ):
            rows = frozenset(tuple(row) for row in rows)
            object.__setattr__(self, "rows", rows)
        arity = self.arity
        for row in rows:
            if len(row) != arity:
                raise SchemaError(
                    f"Row {row!r} has {len(row)} columns; relation "
                    f"{self.name} expects {self.arity}"
                )
        object.__setattr__(self, "_extension", None)

    def __reduce__(self) -> tuple:
        """Pickle name/arity/rows only.

        The extension lineage holds a weak reference (unpicklable) and
        is a cache hint, not state; process workers rebuild caches
        locally.  Unpickling through :meth:`from_canonical` also skips
        re-validating rows that were canonical by construction.
        """
        return (Relation.from_canonical, (self.name, self.arity, self.rows))

    @classmethod
    def of(cls, name: str, arity: int, rows: Iterable[Iterable[Any]] = ()) -> "Relation":
        """Build a relation from any iterable of rows."""
        return cls(name, arity, frozenset(tuple(row) for row in rows))

    @classmethod
    def empty(cls, name: str, arity: int) -> "Relation":
        """An empty relation of the given arity."""
        return cls(name, arity, frozenset())

    @classmethod
    def from_canonical(cls, name: str, arity: int, rows: frozenset[Row]) -> "Relation":
        """Build a relation from rows that are already canonical.

        The caller guarantees *rows* is a ``frozenset`` of tuples of length
        *arity*; no re-tupling or validation is performed.  This is the
        constructor the evaluation engine uses on its hot paths, where the
        rows come out of other relations or out of the join executor and
        are canonical by construction.
        """
        relation = object.__new__(cls)
        object.__setattr__(relation, "name", name)
        object.__setattr__(relation, "arity", arity)
        object.__setattr__(relation, "rows", rows)
        object.__setattr__(relation, "_extension", None)
        return relation

    def extended_with(self, rows: Iterable[Row]) -> "Relation":
        """A relation with *rows* added that remembers what was added.

        The result records ``(base, added rows)`` — the base is held
        through a weak reference, so extension chains never pin old
        generations in memory.  Index and interning caches use this
        lineage (:func:`rows_added_since`) to *extend* structures built
        over the base from the added rows alone instead of rebuilding
        them, which turns per-iteration maintenance of a growing
        relation from ``O(total)`` into ``O(new)``.

        Rows must already be canonical tuples (they come out of the
        evaluation engine); rows already present are deduplicated by the
        set union.
        """
        added = frozenset(rows) - self.rows
        relation = Relation.from_canonical(self.name, self.arity,
                                           self.rows | added)
        object.__setattr__(relation, "_extension",
                           (weakref.ref(self), added))
        return relation

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def union(self, other: "Relation") -> "Relation":
        """Set union; arities must agree (names follow the receiver)."""
        self._check_compatible(other)
        return Relation.from_canonical(self.name, self.arity, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; arities must agree."""
        self._check_compatible(other)
        return Relation.from_canonical(self.name, self.arity, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; arities must agree."""
        self._check_compatible(other)
        return Relation.from_canonical(self.name, self.arity, self.rows & other.rows)

    def with_rows(self, rows: Iterable[Row]) -> "Relation":
        """Return a relation with *rows* added."""
        return Relation(self.name, self.arity, self.rows | frozenset(tuple(r) for r in rows))

    def renamed(self, name: str) -> "Relation":
        """Return the same relation under a different name."""
        return Relation.from_canonical(name, self.arity, self.rows)

    def filter(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Rows satisfying *predicate*."""
        return Relation.from_canonical(
            self.name, self.arity, frozenset(r for r in self.rows if predicate(r))
        )

    def project(self, positions: Iterable[int], name: str | None = None) -> "Relation":
        """Project onto *positions* (0-based), preserving their order."""
        positions = tuple(positions)
        for position in positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"Projection position {position} out of range for arity {self.arity}"
                )
        projected = frozenset(tuple(row[p] for p in positions) for row in self.rows)
        return Relation(name or self.name, len(positions), projected)

    def select_equal(self, position: int, value: Any) -> "Relation":
        """Rows whose *position* column equals *value*."""
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"Selection position {position} out of range for arity {self.arity}"
            )
        return self.filter(lambda row: row[position] == value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def columns(self, positions: Iterable[int] | None = None,
                domain: "Optional[Domain]" = None
                ) -> tuple[list[Any], ...] | tuple["array", ...]:
        """The relation decomposed into column lists (bulk extraction).

        Returns one value list per requested position (all positions when
        *positions* is ``None``); the lists are mutually row-aligned — the
        ``j``-th entries across all returned columns come from the same
        row.  Row order is the relation's internal iteration order, which
        is stable for the lifetime of the relation object.  The batch
        executor (:mod:`repro.engine.vectorized`) uses this to turn a
        leading full scan into plain column extraction.

        With a *domain*, each column comes back as an ``array('q')`` of
        interned ids instead of a value list — the canonical interned
        form the int-specialised executor runs on (ids are assigned via
        :meth:`repro.storage.domain.Domain.intern`).
        """
        selected = tuple(range(self.arity)) if positions is None else tuple(positions)
        for position in selected:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"Column {position} out of range for arity {self.arity}"
                )
        if domain is not None:
            # One interning implementation: the canonical form builds
            # every column; this view just selects from it.
            from repro.storage.domain import InternedRelation

            interned = InternedRelation.from_relation(self, domain)
            return tuple(interned.columns[position] for position in selected)
        rows = list(self.rows)
        return tuple([row[position] for row in rows] for position in selected)

    def column_values(self, position: int) -> frozenset[Any]:
        """Distinct values in column *position*."""
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"Column {position} out of range for arity {self.arity}"
            )
        return frozenset(row[position] for row in self.rows)

    def active_domain(self) -> frozenset[Any]:
        """All values appearing anywhere in the relation."""
        return frozenset(value for row in self.rows for value in row)

    def is_empty(self) -> bool:
        """True if the relation holds no rows."""
        return not self.rows

    def __contains__(self, row: Iterable[Any]) -> bool:
        return tuple(row) in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __le__(self, other: "Relation") -> bool:
        self._check_compatible(other)
        return self.rows <= other.rows

    def _check_compatible(self, other: "Relation") -> None:
        if self.arity != other.arity:
            raise SchemaError(
                f"Relations {self.name}/{self.arity} and {other.name}/{other.arity} "
                "have different arities"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}[{len(self.rows)} rows]"

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic order (for display and golden tests)."""
        return sorted(self.rows, key=lambda row: tuple(str(v) for v in row))


def rows_added_since(relation: Relation, base: Relation,
                     max_hops: int = 64) -> Optional[frozenset[Row]]:
    """The rows *relation* gained over *base*, or ``None`` if unknown.

    Walks the extension lineage recorded by :meth:`Relation.extended_with`
    from *relation* back towards *base*; returns the union of the added
    rows when the chain reaches *base* (the empty frozenset when they
    are the same object).  ``None`` means the chain is broken — no
    lineage, a collected base, or too many hops — and the caller must
    rebuild whatever it was hoping to extend.
    """
    if relation is base:
        return frozenset()
    added: list[frozenset[Row]] = []
    node: Optional[Relation] = relation
    for _ in range(max_hops):
        extension = getattr(node, "_extension", None)
        if extension is None:
            return None
        base_ref, delta = extension
        node = base_ref()
        if node is None:
            return None
        added.append(delta)
        if node is base:
            return frozenset().union(*added)
    return None


def rows_removed_since(relation: Relation,
                       base: Relation) -> Optional[frozenset[Row]]:
    """The rows *base* lost if *relation* is a pure shrink of it, else None.

    The delete-path counterpart of :func:`rows_added_since`: deletions
    produce a fresh relation with no extension lineage, but a swap that
    only *removed* rows is recognisable by a subset check — the caller
    (e.g. ``Database.interned_relation``) can then filter its cached
    artefact instead of rebuilding from scratch.  ``None`` means the
    swap was not a pure shrink (renames, arity changes, mixed
    add/remove) and a full rebuild is required.
    """
    if relation.name != base.name or relation.arity != base.arity:
        return None
    if len(relation.rows) > len(base.rows) or not relation.rows <= base.rows:
        return None
    return base.rows - relation.rows


class RowSetBuilder:
    """A mutable accumulator of canonical rows for one relation.

    The fixpoint engines accumulate their result over many iterations.
    Re-building an immutable :class:`Relation` per iteration re-hashes the
    whole accumulated set every time (``O(n)`` per iteration, ``O(n^2)``
    per fixpoint); the builder keeps one mutable set, absorbs each
    iteration's delta in ``O(|delta|)``, and freezes into a relation once
    at the end.  Rows handed to the builder must already be canonical
    tuples of the declared arity (they come out of the join executor,
    which guarantees this).
    """

    __slots__ = ("name", "arity", "rows", "_last_frozen", "_added_since_freeze")

    def __init__(self, name: str, arity: int, rows: Iterable[Row] = ()):
        self.name = name
        self.arity = arity
        self.rows: set[Row] = set(rows)
        self._last_frozen: Optional[Relation] = None
        self._added_since_freeze: set[Row] = set()

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def add_all_new(self, rows: set[Row]) -> frozenset[Row]:
        """Absorb *rows*, returning (as a frozenset) the ones that were new."""
        new_rows = frozenset(rows - self.rows)
        self.rows |= new_rows
        if self._last_frozen is not None:
            self._added_since_freeze |= new_rows
        return new_rows

    def freeze(self) -> Relation:
        """Snapshot the accumulated rows as an immutable relation.

        Consecutive freezes are chained through the extension lineage
        (:meth:`Relation.extended_with`): each snapshot records what it
        gained over the previous one, so delta-index and interning
        caches maintain their structures from the new rows alone when a
        driver (e.g. the naive closure) re-freezes every iteration.
        """
        previous = self._last_frozen
        if previous is None:
            frozen = Relation.from_canonical(self.name, self.arity,
                                             frozenset(self.rows))
        else:
            frozen = previous.extended_with(self._added_since_freeze)
        self._last_frozen = frozen
        self._added_since_freeze = set()
        return frozen
