"""Selections on relations (the σ of Sections 3, 4 and 6).

A :class:`Selection` restricts a relation to rows satisfying a condition.
The two concrete conditions needed by the paper's algorithms are equality
with a constant on one argument position (:class:`EqualitySelection`) and
equality between two argument positions
(:class:`PositionEqualitySelection`).  Conjunctions are built with
:meth:`Selection.conjoin`.

A selection σ *commutes* with a linear operator ``A`` when ``σA = Aσ``;
the syntactic sufficient condition used by the planner (the selected
positions are 1-persistent in ``A``'s rule) lives in
:mod:`repro.core.separability`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.storage.relation import Relation, Row


class Selection(ABC):
    """A predicate on rows; applying a selection filters a relation."""

    @abstractmethod
    def matches(self, row: Row) -> bool:
        """True if the row satisfies the selection."""

    @abstractmethod
    def positions(self) -> frozenset[int]:
        """Argument positions the selection constrains."""

    def apply(self, relation: Relation) -> Relation:
        """Filter *relation* to the rows satisfying this selection."""
        return relation.filter(self.matches)

    def conjoin(self, other: "Selection") -> "Selection":
        """The conjunction of two selections."""
        return ConjunctiveSelection((self, other))

    def __call__(self, relation: Relation) -> Relation:
        return self.apply(relation)


@dataclass(frozen=True)
class EqualitySelection(Selection):
    """σ[position = value]: rows whose *position* column equals *value*."""

    position: int
    value: Any

    def matches(self, row: Row) -> bool:
        return row[self.position] == self.value

    def positions(self) -> frozenset[int]:
        return frozenset({self.position})

    def __str__(self) -> str:
        return f"σ[{self.position} = {self.value!r}]"


@dataclass(frozen=True)
class PositionEqualitySelection(Selection):
    """σ[left = right]: rows whose two columns are equal."""

    left: int
    right: int

    def matches(self, row: Row) -> bool:
        return row[self.left] == row[self.right]

    def positions(self) -> frozenset[int]:
        return frozenset({self.left, self.right})

    def __str__(self) -> str:
        return f"σ[{self.left} = {self.right}]"


@dataclass(frozen=True)
class ConjunctiveSelection(Selection):
    """A conjunction of selections."""

    parts: tuple[Selection, ...]

    def matches(self, row: Row) -> bool:
        return all(part.matches(row) for part in self.parts)

    def positions(self) -> frozenset[int]:
        result: frozenset[int] = frozenset()
        for part in self.parts:
            result |= part.positions()
        return result

    def __str__(self) -> str:
        return " ∧ ".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class TrueSelection(Selection):
    """The selection that keeps every row (identity)."""

    def matches(self, row: Row) -> bool:
        return True

    def positions(self) -> frozenset[int]:
        return frozenset()

    def __str__(self) -> str:
        return "σ[true]"
