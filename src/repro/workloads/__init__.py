"""Synthetic workload generators and the paper's canonical scenarios.

The paper's claims are analytic; these generators turn them into
measurable experiments: graph-shaped EDBs of controllable size and shape,
random relations for arbitrary schemas, random rule pairs of the
restricted class (both commuting and non-commuting), and the exact rule
sets of the paper's worked examples.
"""

from repro.workloads.graphs import (
    chain_edges,
    cycle_edges,
    grid_edges,
    layered_dag_edges,
    random_graph_edges,
    tree_edges,
)
from repro.workloads.relations import random_relation, random_unary_relation
from repro.workloads.rulegen import random_commuting_pair, random_restricted_rule, random_rule_pair
from repro.workloads.wide import (
    wide_multirule_database,
    wide_multirule_program,
    wide_multirule_rules,
    wide_multirule_workload,
)
from repro.workloads import scenarios

__all__ = [
    "chain_edges",
    "cycle_edges",
    "grid_edges",
    "layered_dag_edges",
    "random_commuting_pair",
    "random_graph_edges",
    "random_relation",
    "random_restricted_rule",
    "random_rule_pair",
    "random_unary_relation",
    "scenarios",
    "tree_edges",
    "wide_multirule_database",
    "wide_multirule_program",
    "wide_multirule_rules",
    "wide_multirule_workload",
]
