"""Graph-shaped EDB generators.

All generators return a :class:`~repro.storage.relation.Relation` of arity
2 whose rows are the edges of the generated graph.  Node identifiers are
integers starting at 0.  Generators accept an optional ``rng`` so callers
control determinism (the benchmarks always pass a seeded generator).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.storage.relation import Relation


def chain_edges(length: int, name: str = "edge") -> Relation:
    """A simple path ``0 -> 1 -> ... -> length``."""
    return Relation.of(name, 2, [(i, i + 1) for i in range(length)])


def cycle_edges(length: int, name: str = "edge") -> Relation:
    """A directed cycle on ``length`` nodes."""
    if length <= 0:
        return Relation.empty(name, 2)
    return Relation.of(name, 2, [(i, (i + 1) % length) for i in range(length)])


def tree_edges(depth: int, branching: int = 2, name: str = "edge") -> Relation:
    """A complete ``branching``-ary tree of the given depth, edges parent -> child."""
    edges: list[tuple[int, int]] = []
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier: list[int] = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return Relation.of(name, 2, edges)


def grid_edges(rows: int, columns: int, name: str = "edge") -> Relation:
    """A directed grid: edges go right and down; node ``(r, c)`` is ``r * columns + c``."""
    edges: list[tuple[int, int]] = []
    for row in range(rows):
        for column in range(columns):
            node = row * columns + column
            if column + 1 < columns:
                edges.append((node, node + 1))
            if row + 1 < rows:
                edges.append((node, node + columns))
    return Relation.of(name, 2, edges)


def random_graph_edges(nodes: int, edges: int, name: str = "edge",
                       rng: Optional[random.Random] = None,
                       allow_self_loops: bool = False) -> Relation:
    """A random directed graph with *nodes* nodes and (about) *edges* edges."""
    rng = rng if rng is not None else random.Random(0)
    chosen: set[tuple[int, int]] = set()
    attempts = 0
    limit = edges * 20 + 100
    while len(chosen) < edges and attempts < limit:
        attempts += 1
        source = rng.randrange(nodes)
        target = rng.randrange(nodes)
        if not allow_self_loops and source == target:
            continue
        chosen.add((source, target))
    return Relation.of(name, 2, chosen)


def layered_dag_edges(layers: int, width: int, fanout: int = 2, name: str = "edge",
                      rng: Optional[random.Random] = None) -> Relation:
    """A layered DAG: each node has *fanout* edges to random nodes of the next layer.

    Node ``w`` of layer ``l`` has identifier ``l * width + w``.  Layered
    DAGs produce many alternative derivation paths, which is the workload
    shape where the duplicate savings of Theorem 3.1 are largest.
    """
    rng = rng if rng is not None else random.Random(0)
    edges: set[tuple[int, int]] = set()
    for layer in range(layers - 1):
        for position in range(width):
            source = layer * width + position
            for _ in range(fanout):
                target = (layer + 1) * width + rng.randrange(width)
                edges.add((source, target))
    return Relation.of(name, 2, edges)
