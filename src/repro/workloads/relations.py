"""Random relation generators for arbitrary schemas."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.storage.relation import Relation


def random_relation(name: str, arity: int, rows: int, domain_size: int = 32,
                    rng: Optional[random.Random] = None) -> Relation:
    """A relation with *rows* random tuples over the domain ``0..domain_size-1``.

    If the domain is too small to hold *rows* distinct tuples, as many
    distinct tuples as possible are generated.
    """
    rng = rng if rng is not None else random.Random(0)
    capacity = domain_size ** arity
    target = min(rows, capacity)
    chosen: set[tuple[int, ...]] = set()
    attempts = 0
    limit = target * 50 + 100
    while len(chosen) < target and attempts < limit:
        attempts += 1
        chosen.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
    return Relation.of(name, arity, chosen)


def random_unary_relation(name: str, members: int, domain_size: int = 32,
                          rng: Optional[random.Random] = None) -> Relation:
    """A unary relation holding *members* distinct domain values."""
    rng = rng if rng is not None else random.Random(0)
    members = min(members, domain_size)
    values = rng.sample(range(domain_size), members)
    return Relation.of(name, 1, [(value,) for value in values])


def relation_from_pairs(name: str, pairs: Sequence[tuple[int, int]]) -> Relation:
    """Convenience wrapper building a binary relation from explicit pairs."""
    return Relation.of(name, 2, pairs)
