"""Random rule-pair generators for the restricted class of Theorem 5.2.

The E-POLY benchmark compares the ``O(a log a)`` syntactic commutativity
test with the definition-based test as rule size grows, and the detection
experiments need large populations of both commuting and non-commuting
pairs.  The generators here produce linear, function-free, constant-free,
range-restricted rules with no repeated consequent variables and no
repeated nonrecursive predicates, i.e. members of the restricted class.

Construction of a *commuting* pair follows Theorem 5.1 directly: every
consequent position is assigned a clause — (a) free 1-persistent in one
rule and arbitrary-but-safe in the other, (b) link 1-persistent in both,
or (d) carried by bridges built identically in the two rules (hence
equivalent).  Construction of a generic pair places nonrecursive
predicates at random, which with high probability breaks the condition.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datalog.atoms import Atom, Predicate
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable


def _head(arity: int, predicate: str = "p") -> Atom:
    return Atom(
        Predicate(predicate, arity),
        tuple(Variable(f"X{i}") for i in range(arity)),
    )


def random_restricted_rule(arity: int, nonrecursive_predicates: int,
                           rng: Optional[random.Random] = None,
                           predicate: str = "p",
                           predicate_prefix: str = "q") -> Rule:
    """One random linear rule of the restricted class.

    Each consequent position is independently made 1-persistent (the body
    literal repeats the head variable) or general (the body literal uses a
    fresh nondistinguished variable).  Each nonrecursive predicate is
    binary and connects two randomly chosen variables of the rule; every
    head variable that is not 1-persistent is forced to appear in some
    nonrecursive atom so the rule stays range-restricted.
    """
    rng = rng if rng is not None else random.Random(0)
    head = _head(arity, predicate)
    head_vars = list(head.arguments)

    body_args: list[Variable] = []
    fresh_count = 0
    general_positions: list[int] = []
    for position in range(arity):
        if rng.random() < 0.5:
            body_args.append(head_vars[position])
        else:
            fresh_count += 1
            body_args.append(Variable(f"N{fresh_count}"))
            general_positions.append(position)
    recursive = Atom(Predicate(predicate, arity), tuple(body_args))

    pool: list[Variable] = list(dict.fromkeys(list(head_vars) + body_args))
    atoms: list[Atom] = []
    for index in range(nonrecursive_predicates):
        name = f"{predicate_prefix}{index}"
        first = rng.choice(pool)
        second = rng.choice(pool)
        atoms.append(Atom.of(name, first, second))

    # Ensure range restriction: every general head variable must occur in
    # the body; attach a dedicated predicate when it does not.
    covered = {var for atom in atoms for var in atom.variables()} | set(body_args)
    extra = 0
    for position in general_positions:
        variable = head_vars[position]
        if variable not in covered:
            atoms.append(Atom.of(f"{predicate_prefix}rr{extra}", variable, variable))
            covered.add(variable)
            extra += 1
    return Rule(head, (recursive, *atoms))


def random_rule_pair(arity: int, nonrecursive_predicates: int,
                     rng: Optional[random.Random] = None) -> tuple[Rule, Rule]:
    """Two independently random restricted rules over the same consequent.

    The second rule uses a disjoint set of nonrecursive predicate names, so
    the pair is function-free, constant-free, and shares only the
    recursive predicate.  Such pairs usually do *not* commute.
    """
    rng = rng if rng is not None else random.Random(0)
    first = random_restricted_rule(arity, nonrecursive_predicates, rng, predicate_prefix="q")
    second = random_restricted_rule(arity, nonrecursive_predicates, rng, predicate_prefix="r")
    return first, second


def random_commuting_pair(arity: int, rng: Optional[random.Random] = None
                          ) -> tuple[Rule, Rule]:
    """Two restricted rules built to satisfy the condition of Theorem 5.1.

    Each consequent position is assigned one of:

    * clause (a): the position is free 1-persistent in exactly one of the
      two rules; in the other it is general, carried by a nonrecursive
      predicate private to that rule;
    * clause (b): the position is link 1-persistent in both rules, sharing
      one nonrecursive predicate name (the shared bridge is identical,
      hence equivalent).
    """
    rng = rng if rng is not None else random.Random(0)
    head = _head(arity)
    head_vars = list(head.arguments)

    first_body = list(head_vars)
    second_body = list(head_vars)
    first_atoms: list[Atom] = []
    second_atoms: list[Atom] = []
    fresh = 0

    for position in range(arity):
        variable = head_vars[position]
        choice = rng.choice(["a-first", "a-second", "b"])
        if choice == "b":
            # Link 1-persistent in both rules: identical unary predicate.
            atom = Atom.of(f"s{position}", variable)
            first_atoms.append(atom)
            second_atoms.append(atom)
        elif choice == "a-first":
            # Free 1-persistent in the first rule, general in the second.
            fresh += 1
            second_body[position] = Variable(f"N{fresh}")
            second_atoms.append(Atom.of(f"r{position}", second_body[position], variable))
        else:
            # Free 1-persistent in the second rule, general in the first.
            fresh += 1
            first_body[position] = Variable(f"M{fresh}")
            first_atoms.append(Atom.of(f"q{position}", first_body[position], variable))

    predicate = Predicate("p", arity)
    first = Rule(head, (Atom(predicate, tuple(first_body)), *first_atoms))
    second = Rule(head, (Atom(predicate, tuple(second_body)), *second_atoms))
    return first, second
