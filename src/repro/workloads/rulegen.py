"""Random rule-pair generators for the restricted class of Theorem 5.2.

The E-POLY benchmark compares the ``O(a log a)`` syntactic commutativity
test with the definition-based test as rule size grows, and the detection
experiments need large populations of both commuting and non-commuting
pairs.  The generators here produce linear, function-free, constant-free,
range-restricted rules with no repeated consequent variables and no
repeated nonrecursive predicates, i.e. members of the restricted class.

Construction of a *commuting* pair follows Theorem 5.1 directly: every
consequent position is assigned a clause — (a) free 1-persistent in one
rule and arbitrary-but-safe in the other, (b) link 1-persistent in both,
or (d) carried by bridges built identically in the two rules (hence
equivalent).  Construction of a generic pair places nonrecursive
predicates at random, which with high probability breaks the condition.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datalog.atoms import Atom, Predicate
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.storage.database import Database
from repro.storage.relation import Relation


def _head(arity: int, predicate: str = "p") -> Atom:
    return Atom(
        Predicate(predicate, arity),
        tuple(Variable(f"X{i}") for i in range(arity)),
    )


def random_restricted_rule(arity: int, nonrecursive_predicates: int,
                           rng: Optional[random.Random] = None,
                           predicate: str = "p",
                           predicate_prefix: str = "q") -> Rule:
    """One random linear rule of the restricted class.

    Each consequent position is independently made 1-persistent (the body
    literal repeats the head variable) or general (the body literal uses a
    fresh nondistinguished variable).  Each nonrecursive predicate is
    binary and connects two randomly chosen variables of the rule; every
    head variable that is not 1-persistent is forced to appear in some
    nonrecursive atom so the rule stays range-restricted.
    """
    rng = rng if rng is not None else random.Random(0)
    head = _head(arity, predicate)
    head_vars = list(head.arguments)

    body_args: list[Variable] = []
    fresh_count = 0
    general_positions: list[int] = []
    for position in range(arity):
        if rng.random() < 0.5:
            body_args.append(head_vars[position])
        else:
            fresh_count += 1
            body_args.append(Variable(f"N{fresh_count}"))
            general_positions.append(position)
    recursive = Atom(Predicate(predicate, arity), tuple(body_args))

    pool: list[Variable] = list(dict.fromkeys(list(head_vars) + body_args))
    atoms: list[Atom] = []
    for index in range(nonrecursive_predicates):
        name = f"{predicate_prefix}{index}"
        first = rng.choice(pool)
        second = rng.choice(pool)
        atoms.append(Atom.of(name, first, second))

    # Ensure range restriction: every general head variable must occur in
    # the body; attach a dedicated predicate when it does not.
    covered = {var for atom in atoms for var in atom.variables()} | set(body_args)
    extra = 0
    for position in general_positions:
        variable = head_vars[position]
        if variable not in covered:
            atoms.append(Atom.of(f"{predicate_prefix}rr{extra}", variable, variable))
            covered.add(variable)
            extra += 1
    return Rule(head, (recursive, *atoms))


def random_rule_pair(arity: int, nonrecursive_predicates: int,
                     rng: Optional[random.Random] = None) -> tuple[Rule, Rule]:
    """Two independently random restricted rules over the same consequent.

    The second rule uses a disjoint set of nonrecursive predicate names, so
    the pair is function-free, constant-free, and shares only the
    recursive predicate.  Such pairs usually do *not* commute.
    """
    rng = rng if rng is not None else random.Random(0)
    first = random_restricted_rule(arity, nonrecursive_predicates, rng, predicate_prefix="q")
    second = random_restricted_rule(arity, nonrecursive_predicates, rng, predicate_prefix="r")
    return first, second


def random_commuting_pair(arity: int, rng: Optional[random.Random] = None
                          ) -> tuple[Rule, Rule]:
    """Two restricted rules built to satisfy the condition of Theorem 5.1.

    Each consequent position is assigned one of:

    * clause (a): the position is free 1-persistent in exactly one of the
      two rules; in the other it is general, carried by a nonrecursive
      predicate private to that rule;
    * clause (b): the position is link 1-persistent in both rules, sharing
      one nonrecursive predicate name (the shared bridge is identical,
      hence equivalent).
    """
    rng = rng if rng is not None else random.Random(0)
    head = _head(arity)
    head_vars = list(head.arguments)

    first_body = list(head_vars)
    second_body = list(head_vars)
    first_atoms: list[Atom] = []
    second_atoms: list[Atom] = []
    fresh = 0

    for position in range(arity):
        variable = head_vars[position]
        choice = rng.choice(["a-first", "a-second", "b"])
        if choice == "b":
            # Link 1-persistent in both rules: identical unary predicate.
            atom = Atom.of(f"s{position}", variable)
            first_atoms.append(atom)
            second_atoms.append(atom)
        elif choice == "a-first":
            # Free 1-persistent in the first rule, general in the second.
            fresh += 1
            second_body[position] = Variable(f"N{fresh}")
            second_atoms.append(Atom.of(f"r{position}", second_body[position], variable))
        else:
            # Free 1-persistent in the second rule, general in the first.
            fresh += 1
            first_body[position] = Variable(f"M{fresh}")
            first_atoms.append(Atom.of(f"q{position}", first_body[position], variable))

    predicate = Predicate("p", arity)
    first = Rule(head, (Atom(predicate, tuple(first_body)), *first_atoms))
    second = Rule(head, (Atom(predicate, tuple(second_body)), *second_atoms))
    return first, second


# ----------------------------------------------------------------------
# Skewed planner-shootout families (benchmarks/bench_planner.py)
# ----------------------------------------------------------------------


def skewed_filter_program(chain: int = 40, blow_fanout: int = 20,
                          sel_padding: int = 1000
                          ) -> tuple[tuple[Rule, ...], Database, Relation]:
    """A workload where the greedy size heuristic picks the wrong scan.

    The rule is ``p(X,Y) :- p(X,Z), blow(Z,Y), sel(Z,Y)`` over a
    *chain*-long path: for every chain node ``z``, ``blow`` holds the
    true successor plus ``blow_fanout - 1`` garbage targets, while
    ``sel`` holds only the true successor — plus ``sel_padding`` rows
    under keys the evaluation never probes.  The padding makes ``sel``
    the *larger* relation, so greedy's size tie-break scans ``blow``
    first (``blow_fanout`` probed rows per delta row); the cost model's
    matches-per-probe estimate (``|R| / d_Z``) sees straight through it
    and scans ``sel`` first (one probed row per delta row).  Both orders
    emit the identical head multiset — only ``rows_probed`` differs.

    Returns ``(rules, database, initial)`` ready for the fixpoint
    drivers; the initial relation seeds the chain at node 0.
    """
    blow_rows: list[tuple[int, int]] = []
    sel_rows: list[tuple[int, int]] = []
    garbage = 10_000
    for z in range(chain):
        blow_rows.append((z, z + 1))
        for j in range(blow_fanout - 1):
            garbage += 1
            blow_rows.append((z, garbage))
        sel_rows.append((z, z + 1))
    for i in range(sel_padding):
        sel_rows.append((100_000 + i, 200_000 + i))
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    p = Predicate("p", 2)
    rule = Rule(
        Atom(p, (X, Y)),
        (Atom(p, (X, Z)), Atom.of("blow", Z, Y), Atom.of("sel", Z, Y)),
    )
    database = Database({
        "blow": Relation.of("blow", 2, blow_rows),
        "sel": Relation.of("sel", 2, sel_rows),
    })
    initial = Relation.of("p", 2, [(0, 0)])
    return (rule,), database, initial


def hub_drift_program(chain: int = 40, hot_start: int = 6,
                      hot_fanout: int = 60, alt_fanout: int = 4,
                      padding: int = 3000
                      ) -> tuple[tuple[Rule, ...], Database, Relation]:
    """A workload whose cold statistics mislead greedy *and* costed.

    The rule is ``p(X,Y) :- p(X,Z), hub(X,Z,Y), alt(Z,Y)`` over a
    *chain*-long path.  ``hub`` shares two bound variables with the
    delta, so greedy scans it first; its padding rows (*padding* triples
    under never-probed keys with near-distinct columns) also make the
    cost model's cold matches-per-probe estimate tiny, so the costed
    planner scans it first too.  But past node *hot_start* every live
    probe of ``hub`` returns ``hot_fanout`` rows, while ``alt`` stays at
    ``alt_fanout`` everywhere — only the adaptive planner, re-costing
    with fanouts *measured on the live frontier* after the delta/total
    ratio drifts, swaps to the ``alt``-first order mid-fixpoint.

    Returns ``(rules, database, initial)``; the initial relation seeds
    the chain at node 0 with source value 0.
    """
    hub_rows: list[tuple[int, int, int]] = []
    alt_rows: list[tuple[int, int]] = []
    garbage = 10_000
    for z in range(chain):
        fanout = hot_fanout if z >= hot_start else 1
        hub_rows.append((0, z, z + 1))
        for j in range(fanout - 1):
            garbage += 1
            hub_rows.append((0, z, garbage))
        alt_rows.append((z, z + 1))
        for j in range(alt_fanout - 1):
            garbage += 1
            alt_rows.append((z, garbage))
    for i in range(padding):
        hub_rows.append((300_000 + i, 400_000 + i, 500_000 + i))
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    p = Predicate("p", 2)
    rule = Rule(
        Atom(p, (X, Y)),
        (Atom(p, (X, Z)), Atom.of("hub", X, Z, Y), Atom.of("alt", Z, Y)),
    )
    database = Database({
        "hub": Relation.of("hub", 3, hub_rows),
        "alt": Relation.of("alt", 2, alt_rows),
    })
    initial = Relation.of("p", 2, [(0, 0)])
    return (rule,), database, initial
