"""The paper's canonical rules, examples, and figure inputs.

Each scenario is exposed as a module-level function returning freshly
parsed rules, so callers can mutate derived structures without affecting
other users.  The scenarios are referenced by the figure-reproduction
experiments (FIG-1 … FIG-9), the example applications, and many tests.

OCR notes (documented here and in EXPERIMENTS.md):

* The rule of Example 5.1 / Figure 1 is not recoverable verbatim from the
  available text; :func:`example_5_1_rule` reconstructs a rule matching
  the classification the paper states for it (z free 1-persistent, w and
  y link 1-persistent, u and v free 2-persistent, x general).
* In Example 5.1's second rule (Figure 2) the nonrecursive literal is
  printed ambiguously; the wide rules listed in the paper
  (``P(u,w,x,y,z) :- P(u,w,u,y,z), Q(...), S(x)``) pin it down to
  ``Q(u,x,y)``, which is what :func:`figure_2_rule` uses.
"""

from __future__ import annotations

from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.programs import Program
from repro.datalog.rules import Rule


# ----------------------------------------------------------------------
# Section 5 examples
# ----------------------------------------------------------------------

def example_5_1_rule() -> Rule:
    """A rule realising the classification stated in Example 5.1 (Figure 1).

    ``z`` is free 1-persistent, ``w`` and ``y`` are link 1-persistent,
    ``u`` and ``v`` are free 2-persistent, and ``x`` is general.
    """
    return parse_rule("p(U,V,W,X,Y,Z) :- p(V,U,W,Y,Y,Z), q(X,W), r(Y,Y).")


def figure_2_rule() -> Rule:
    """The 5-ary rule of Example 5.1 whose augmented bridges are Figure 2."""
    return parse_rule("p(U,W,X,Y,Z) :- p(U,U,U,Y,Y), q(U,X,Y), r(W), s(X), t(Z).")


def example_5_2_rules() -> tuple[Rule, Rule]:
    """The two linear forms of transitive closure (Example 5.2, Figure 3)."""
    first = parse_rule("p(X,Y) :- p(U,Y), q(X,U).")
    second = parse_rule("p(X,Y) :- p(X,V), r(V,Y).")
    return first, second


def example_5_3_rules() -> tuple[Rule, Rule]:
    """The commuting 3-ary pair of Example 5.3 (Figure 4)."""
    first = parse_rule("p(X,Y,Z) :- p(U,Y,Z), q(X,Y).")
    second = parse_rule("p(X,Y,Z) :- p(X,Y,V), r(Z,Y).")
    return first, second


def example_5_4_rules() -> tuple[Rule, Rule]:
    """The pair of Example 5.4 (Figure 5): commute, yet the condition fails."""
    first = parse_rule("p(X,Y) :- p(Y,W), q(X).")
    second = parse_rule("p(X,Y) :- p(U,V), q(X), q(Y).")
    return first, second


# ----------------------------------------------------------------------
# Section 6 examples
# ----------------------------------------------------------------------

def example_6_1_rule() -> Rule:
    """Example 6.1 (Figure 6): ``cheap`` is recursively redundant."""
    return parse_rule("buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).")


def example_6_2_rule() -> Rule:
    """Example 6.2 (Figures 7 and 8): ``r`` is recursively redundant; A² = BC²."""
    return parse_rule("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), r(X,Y), s(U,Z).")


def example_6_3_rule() -> Rule:
    """Example 6.3 (Figure 9): BC² ≠ C²B but C²(BC²) = C²(C²B)."""
    return parse_rule("p(W,X,Y,Z) :- p(X,W,X,U), q(Y,U), r(X,Y), s(U,Z).")


# ----------------------------------------------------------------------
# Classic programs used by the examples and benchmarks
# ----------------------------------------------------------------------

def two_sided_transitive_closure_program() -> Program:
    """Path reachability with prepend-edge and append-hop rules plus an exit rule."""
    return parse_program(
        """
        path(X, Y) :- edge(X, U), path(U, Y).
        path(X, Y) :- path(X, V), hop(V, Y).
        path(X, Y) :- base(X, Y).
        """
    )


def same_generation_program() -> Program:
    """The same-generation program (the product of Example 5.2's rules)."""
    return parse_program(
        """
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        sg(X, Y) :- flat(X, Y).
        """
    )


def separable_selection_program() -> Program:
    """A two-operator recursion used by the separable-algorithm experiments."""
    return parse_program(
        """
        reach(X, Y) :- left(X, U), reach(U, Y).
        reach(X, Y) :- reach(X, V), right(V, Y).
        reach(X, Y) :- start(X, Y).
        """
    )


def redundant_buys_program() -> Program:
    """Example 6.1 wrapped into a full program with an exit rule."""
    return parse_program(
        """
        buys(X, Y) :- knows(X, Z), buys(Z, Y), cheap(Y).
        buys(X, Y) :- likes(X, Y).
        """
    )


def noncommuting_program() -> Program:
    """A two-rule recursion whose operators do not commute (control case)."""
    return parse_program(
        """
        t(X, Y) :- a(X, U), t(U, Y).
        t(X, Y) :- b(X, U), t(U, Y).
        t(X, Y) :- seed(X, Y).
        """
    )
