"""The wide multi-rule workload: many linear rules over disjoint EDBs.

The paper's canonical scenarios are narrow — one or two recursive rules
over a couple of EDB relations — which is the wrong shape for measuring
batched execution: with a single rule the only parallelism available is
intra-rule delta partitioning.  This workload is deliberately *wide*:

* ``num_rules`` linear recursive rules over one recursive predicate,

      wide(X, Y) :- wide(U, Y), link<i>(X, U), mark<i>(X).

  Every rule owns a private ``link<i>``/``mark<i>`` EDB pair, so rule
  applications touch pairwise disjoint EDB relations and share only the
  per-iteration delta, which the parallel executor additionally
  partitions by row — both axes of
  :func:`repro.engine.parallel.partition_tasks` are exercised at once.
* The ``link<i>`` relations are a random deal of the edges of one
  layered DAG, so the fixpoint still converges in about ``layers``
  iterations and the union semantics stay those of plain reachability
  over the full edge set (restricted by the marks).
* ``mark<i>`` holds a random fraction of the nodes, so a large share of
  probed bindings fail the final join step: join work per emitted tuple
  is high, which is exactly the profile where farming the join out to
  workers pays for the (serial) merge of the emissions.

All generators are deterministic given an ``rng``.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.programs import Program
from repro.datalog.rules import Rule
from repro.storage.database import Database
from repro.storage.relation import Relation


def wide_multirule_rules(num_rules: int = 6) -> tuple[Rule, ...]:
    """The recursive rules of the wide scenario (no exit rule)."""
    if num_rules < 1:
        raise ValueError("num_rules must be at least 1")
    return tuple(
        parse_rule(f"wide(X, Y) :- wide(U, Y), link{i}(X, U), mark{i}(X).")
        for i in range(num_rules)
    )


def wide_multirule_program(num_rules: int = 6) -> Program:
    """The wide scenario as a full program with a ``seed`` exit rule."""
    lines = [
        f"wide(X, Y) :- wide(U, Y), link{i}(X, U), mark{i}(X)."
        for i in range(num_rules)
    ]
    lines.append("wide(X, Y) :- seed(X, Y).")
    return parse_program("\n".join(lines))


def wide_multirule_database(layers: int, width: int, num_rules: int = 6,
                            fanout: int = 4, mark_fraction: float = 0.5,
                            rng: Optional[random.Random] = None) -> Database:
    """The EDB of the wide scenario.

    A layered DAG on ``layers * width`` nodes (node ``w`` of layer ``l``
    is ``l * width + w``) with *fanout* downward edges per non-bottom
    node is generated, and each edge is dealt uniformly at random to one
    of the ``link<i>`` relations.  Each ``mark<i>`` independently keeps
    every node with probability *mark_fraction*.
    """
    if layers < 2 or width < 1:
        raise ValueError("need at least 2 layers and width 1")
    rng = rng if rng is not None else random.Random(0)

    link_rows: list[set[tuple[int, int]]] = [set() for _ in range(num_rules)]
    for layer in range(1, layers):
        for position in range(width):
            source = layer * width + position
            for _ in range(fanout):
                target = (layer - 1) * width + rng.randrange(width)
                link_rows[rng.randrange(num_rules)].add((source, target))

    nodes = range(layers * width)
    mark_rows = [
        [(node,) for node in nodes if rng.random() < mark_fraction]
        for _ in range(num_rules)
    ]

    relations = [
        Relation.of(f"link{i}", 2, rows) for i, rows in enumerate(link_rows)
    ] + [
        Relation.of(f"mark{i}", 1, rows) for i, rows in enumerate(mark_rows)
    ]
    return Database.of(*relations)


def wide_multirule_workload(layers: int, width: int, num_rules: int = 6,
                            fanout: int = 4, mark_fraction: float = 0.5,
                            rng: Optional[random.Random] = None
                            ) -> tuple[tuple[Rule, ...], Database, Relation]:
    """Rules, EDB, and identity-seeded initial relation, ready to close.

    The initial relation is the identity over all nodes (named ``wide``),
    so the closure computes mark-restricted reachability over the dealt
    edge set.
    """
    rules = wide_multirule_rules(num_rules)
    database = wide_multirule_database(
        layers, width, num_rules, fanout, mark_fraction, rng
    )
    initial = Relation.of(
        "wide", 2, [(node, node) for node in range(layers * width)]
    )
    return rules, database, initial


# ----------------------------------------------------------------------
# The wide 5-ary variant (the paper's wide-head rule shape)
# ----------------------------------------------------------------------


def wide5_rules(num_rules: int = 4) -> tuple[Rule, ...]:
    """Linear 5-ary rules in the shape of the paper's Example 5.1 heads.

    ::

        wide5(V, W, X, Y, Z) :- wide5(U, W, X, Y, Z), link<i>(V, U), mark<i>(V).

    Only the first head position is rewritten per step; the remaining
    four are *persistent* (carried), which is exactly the wide-head
    profile the paper's Section-5 rules exhibit.  For the batch and
    interned executors this exercises the multi-carry fused head
    (``headN``) and the counted final probe (``mark<i>`` binds
    nothing), the shapes a binary head never reaches.
    """
    if num_rules < 1:
        raise ValueError("num_rules must be at least 1")
    return tuple(
        parse_rule(
            f"wide5(V, W, X, Y, Z) :- wide5(U, W, X, Y, Z), "
            f"link{i}(V, U), mark{i}(V)."
        )
        for i in range(num_rules)
    )


def wide5_workload(layers: int, width: int, num_rules: int = 4,
                   fanout: int = 4, mark_fraction: float = 0.5,
                   rng: Optional[random.Random] = None
                   ) -> tuple[tuple[Rule, ...], Database, Relation]:
    """Rules, EDB and seed for the wide 5-ary scenario.

    The EDB is the same dealt ``link<i>``/``mark<i>`` layered DAG as
    :func:`wide_multirule_workload`.  The seed holds one 5-tuple per
    node, ``(n, n, layer(n), slot(n), n mod 7)`` — the last four
    positions ride along unchanged through the closure, so the result
    is mark-restricted reachability tagged with the origin's
    attributes.
    """
    rules = wide5_rules(num_rules)
    database = wide_multirule_database(
        layers, width, num_rules, fanout, mark_fraction, rng
    )
    initial = Relation.of(
        "wide5", 5,
        [(node, node, node // width, node % width, node % 7)
         for node in range(layers * width)],
    )
    return rules, database, initial
