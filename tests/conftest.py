"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datalog.parser import parse_rule
from repro.storage.database import Database
from repro.storage.relation import Relation


@pytest.fixture
def tc_rules():
    """The two commuting transitive-closure forms (Example 5.2)."""
    return (
        parse_rule("p(X,Y) :- p(U,Y), q(X,U)."),
        parse_rule("p(X,Y) :- p(X,V), r(V,Y)."),
    )


@pytest.fixture
def path_rules():
    """Prepend-edge / append-hop path rules over named EDB relations."""
    return (
        parse_rule("path(X, Y) :- edge(X, U), path(U, Y)."),
        parse_rule("path(X, Y) :- path(X, V), hop(V, Y)."),
    )


@pytest.fixture
def chain_database():
    """A 6-node chain for both 'edge' and 'hop'."""
    edge = Relation.of("edge", 2, [(i, i + 1) for i in range(5)])
    hop = Relation.of("hop", 2, [(i, i + 1) for i in range(5)])
    return Database.of(edge, hop)


@pytest.fixture
def identity_initial():
    """The identity relation over the 6-node chain domain, named 'path'."""
    return Relation.of("path", 2, [(i, i) for i in range(6)])


@pytest.fixture
def rng():
    """A seeded random generator for deterministic tests."""
    return random.Random(12345)
