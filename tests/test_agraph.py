"""Tests for a-graph construction, classification, bridges, narrow/wide rules."""

import pytest

from repro.agraph.bridges import (
    bridge_containing,
    bridges_with_respect_to,
    commutativity_bridges,
    default_anchor_arcs,
    redundancy_anchor_arcs,
    redundancy_bridges,
)
from repro.agraph.classification import (
    VariableKind,
    classify_variables,
    link_one_persistent_variables,
    persistent_and_ray_variables,
)
from repro.agraph.graph import AlphaGraph
from repro.agraph.narrow_wide import bridges_equivalent, narrow_rule, wide_rule
from repro.agraph.render import render_ascii, render_dot
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.exceptions import NotApplicableError
from repro.workloads import scenarios

U, V, W, X, Y, Z = (Variable(name) for name in "UVWXYZ")


class TestGraphConstruction:
    def test_nodes_are_all_variables(self):
        graph = AlphaGraph(parse_rule("p(X, Y) :- p(U, Y), q(X, U)."))
        assert set(graph.nodes) == {X, Y, U}

    def test_static_arcs_follow_consecutive_positions(self):
        graph = AlphaGraph(parse_rule("p(X) :- p(X), q(X, Y, Z)."))
        arcs = [(arc.source, arc.target) for arc in graph.static_arcs]
        assert arcs == [(X, Y), (Y, Z)]

    def test_unary_predicate_gives_self_loop(self):
        graph = AlphaGraph(parse_rule("p(X) :- p(X), q(X)."))
        assert [(arc.source, arc.target) for arc in graph.static_arcs] == [(X, X)]

    def test_dynamic_arcs_go_antecedent_to_consequent(self):
        graph = AlphaGraph(parse_rule("p(X, Y) :- p(U, Y), q(X, U)."))
        arcs = {(arc.source, arc.target) for arc in graph.dynamic_arcs}
        assert arcs == {(U, X), (Y, Y)}

    def test_constants_rejected(self):
        with pytest.raises(NotApplicableError):
            AlphaGraph(parse_rule("p(X) :- p(X), q(X, a)."))

    def test_connected_components(self):
        graph = AlphaGraph(parse_rule("p(X, Y) :- p(X, Y), q(X), r(Y)."))
        assert len(graph.connected_components()) == 2

    def test_shortest_dynamic_path(self):
        graph = AlphaGraph(parse_rule("p(X, Y, Z) :- p(U, X, Y), q(U, U)."))
        # Dynamic arcs: U->X, X->Y, Y->Z.
        assert graph.shortest_dynamic_path_length(Z, frozenset({X})) == 2
        assert graph.shortest_dynamic_path_length(Z, frozenset({Z})) == 0
        assert graph.shortest_dynamic_path_length(Z, frozenset({Variable("Q")})) is None


class TestClassification:
    def test_figure_1_classification(self):
        graph = AlphaGraph(scenarios.example_5_1_rule())
        classes = classify_variables(graph)
        assert classes[Z].kind == VariableKind.FREE_PERSISTENT and classes[Z].period == 1
        assert classes[W].kind == VariableKind.LINK_PERSISTENT and classes[W].period == 1
        assert classes[Y].kind == VariableKind.LINK_PERSISTENT
        assert classes[U].kind == VariableKind.FREE_PERSISTENT and classes[U].period == 2
        assert classes[V].kind == VariableKind.FREE_PERSISTENT and classes[V].period == 2
        assert classes[X].is_general

    def test_general_when_h_is_nondistinguished(self):
        graph = AlphaGraph(parse_rule("p(X, Y) :- p(U, Y), q(X, U)."))
        classes = classify_variables(graph)
        assert classes[X].is_general
        assert classes[Y].is_free_persistent

    def test_link_persistence_from_extra_recursive_occurrence(self):
        graph = AlphaGraph(parse_rule("p(X, Y) :- p(X, X), q(Y)."))
        classes = classify_variables(graph)
        assert classes[X].is_link_persistent

    def test_ray_variables(self):
        graph = AlphaGraph(scenarios.example_6_2_rule())
        classes = classify_variables(graph)
        assert classes[Y].is_ray and classes[Y].ray_length == 1
        assert classes[Z].is_general and not classes[Z].is_ray
        assert classes[W].is_link_persistent and classes[W].period == 2

    def test_helper_sets(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        assert link_one_persistent_variables(graph) == frozenset({U, Y})
        graph_62 = AlphaGraph(scenarios.example_6_2_rule())
        assert persistent_and_ray_variables(graph_62) == frozenset({W, X, Y})

    def test_describe_strings(self):
        graph = AlphaGraph(scenarios.example_5_1_rule())
        classes = classify_variables(graph)
        assert classes[U].describe() == "free 2-persistent"
        assert classes[W].describe() == "link 1-persistent"


class TestBridges:
    def test_figure_2_has_three_augmented_bridges(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        bridges = commutativity_bridges(graph)
        assert len(bridges) == 3
        node_sets = {frozenset(node.name for node in bridge.nodes) for bridge in bridges}
        assert frozenset({"U", "W"}) in node_sets
        assert frozenset({"Y", "Z"}) in node_sets
        assert frozenset({"U", "X", "Y"}) in node_sets

    def test_figure_2_narrow_rules_match_paper(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        bridges = commutativity_bridges(graph)
        narrow_texts = {str(narrow_rule(graph, bridge)) for bridge in bridges}
        assert "p(U, W) :- p(U, U), r(W)." in narrow_texts
        assert "p(Y, Z) :- p(Y, Y), t(Z)." in narrow_texts
        assert "p(U, X, Y) :- p(U, U, Y), q(U, X, Y), s(X)." in narrow_texts

    def test_figure_2_wide_rules_match_paper(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        bridges = commutativity_bridges(graph)
        wide_texts = {str(wide_rule(graph, bridge)) for bridge in bridges}
        assert "p(U, W, X, Y, Z) :- p(U, U, X, Y, Z), r(W)." in wide_texts
        assert "p(U, W, X, Y, Z) :- p(U, W, U, Y, Z), q(U, X, Y), s(X)." in wide_texts
        assert "p(U, W, X, Y, Z) :- p(U, W, X, Y, Y), t(Z)." in wide_texts

    def test_default_anchor_arcs_are_self_loops(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        anchors = default_anchor_arcs(graph)
        assert all(arc.source == arc.target for arc in anchors)
        assert {arc.source for arc in anchors} == {U, Y}

    def test_bridge_containing(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        bridges = commutativity_bridges(graph)
        bridge = bridge_containing(bridges, Variable("X"))
        assert bridge is not None and Variable("X") in bridge.nodes
        assert bridge_containing(bridges, Variable("missing")) is None

    def test_every_distinguished_variable_is_in_some_bridge(self):
        graph = AlphaGraph(scenarios.example_6_3_rule())
        bridges = commutativity_bridges(graph)
        for variable in graph.view.distinguished_variables:
            assert bridge_containing(bridges, variable) is not None

    def test_redundancy_bridges_use_g_i(self):
        graph = AlphaGraph(scenarios.example_6_2_rule())
        anchors = redundancy_anchor_arcs(graph)
        assert {(arc.source.name, arc.target.name) for arc in anchors} == {
            ("X", "W"), ("W", "X"), ("X", "Y"),
        }
        bridges = redundancy_bridges(graph)
        r_bridges = [
            bridge for bridge in bridges
            if any(getattr(arc, "label", None) == "r" for arc in bridge.arcs)
        ]
        assert len(r_bridges) == 1
        assert {node.name for node in r_bridges[0].nodes} == {"W", "X", "Y"}

    def test_bridges_with_no_anchor(self):
        graph = AlphaGraph(parse_rule("p(X, Y) :- p(U, Y), q(X, U)."))
        bridges = bridges_with_respect_to(graph, ())
        # Everything falls into one bridge per connected component.
        assert all(not bridge.anchor_arcs for bridge in bridges)


class TestNarrowWideAndEquivalence:
    def test_wide_rule_of_example_6_2_matches_paper_c(self):
        graph = AlphaGraph(scenarios.example_6_2_rule())
        bridges = redundancy_bridges(graph)
        r_bridge = next(
            bridge for bridge in bridges
            if any(getattr(arc, "label", None) == "r" for arc in bridge.arcs)
        )
        assert str(wide_rule(graph, r_bridge)) == "p(W, X, Y, Z) :- p(X, W, X, Z), r(X, Y)."

    def test_bridgeless_variable_has_no_narrow_rule(self):
        graph = AlphaGraph(parse_rule("p(X, Y) :- p(X, Y), q(Z, Z)."))
        bridges = commutativity_bridges(graph)
        nondistinguished_only = [
            bridge for bridge in bridges
            if not (bridge.nodes & set(graph.view.distinguished_variables))
        ]
        for bridge in nondistinguished_only:
            with pytest.raises(NotApplicableError):
                narrow_rule(graph, bridge)

    def test_equivalent_bridges_across_rules(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, Y).")
        second = parse_rule("p(X, Y) :- p(V, Y), q(X, Y).")
        first_graph, second_graph = AlphaGraph(first), AlphaGraph(second)
        first_bridge = bridge_containing(commutativity_bridges(first_graph), X)
        second_bridge = bridge_containing(commutativity_bridges(second_graph), X)
        assert bridges_equivalent(first_graph, first_bridge, second_graph, second_bridge)

    def test_inequivalent_bridges_detected(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, Y).")
        second = parse_rule("p(X, Y) :- p(V, Y), r(X, Y).")
        first_graph, second_graph = AlphaGraph(first), AlphaGraph(second)
        first_bridge = bridge_containing(commutativity_bridges(first_graph), X)
        second_bridge = bridge_containing(commutativity_bridges(second_graph), X)
        assert not bridges_equivalent(first_graph, first_bridge, second_graph, second_bridge)


class TestRendering:
    def test_ascii_mentions_all_nodes_and_arcs(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        text = render_ascii(graph, title="Figure 2")
        assert "Figure 2" in text
        for node in graph.nodes:
            assert node.name in text
        assert "static arcs" in text and "dynamic arcs" in text

    def test_dot_output_is_well_formed(self):
        graph = AlphaGraph(scenarios.example_5_2_rules()[0])
        dot = render_dot(graph, name="fig3")
        assert dot.startswith("digraph fig3 {") and dot.rstrip().endswith("}")
        assert "style=bold" in dot
