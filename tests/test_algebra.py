"""Tests for the operator algebra (repro.algebra)."""

import pytest

from repro.algebra.closure import (
    bounded_power_apply,
    closure_apply,
    closure_apply_product,
    closure_apply_sum,
)
from repro.algebra.operator import (
    IdentityOperator,
    LinearOperator,
    SumOperator,
    ZeroOperator,
    operators_from_rules,
)
from repro.algebra.ordering import (
    empirically_equal,
    empirically_leq,
    operator_equal,
    operator_leq,
)
from repro.algebra.properties import (
    boundedness_witness,
    is_torsion,
    is_uniformly_bounded,
    torsion_period,
)
from repro.datalog.parser import parse_rule
from repro.exceptions import RuleStructureError, SchemaError
from repro.storage.database import Database
from repro.storage.relation import Relation

PREPEND = parse_rule("path(X, Y) :- edge(X, U), path(U, Y).")
APPEND = parse_rule("path(X, Y) :- path(X, V), hop(V, Y).")


@pytest.fixture
def database():
    return Database.of(
        Relation.of("edge", 2, [(0, 1), (1, 2), (2, 3)]),
        Relation.of("hop", 2, [(2, 4), (3, 4)]),
    )


@pytest.fixture
def identity_relation():
    return Relation.of("path", 2, [(i, i) for i in range(5)])


class TestLinearOperator:
    def test_apply_once(self, database, identity_relation):
        operator = LinearOperator(PREPEND, label="B")
        applied = operator.apply(identity_relation, database)
        assert applied.rows == database.relation("edge").rows

    def test_apply_checks_arity(self, database):
        operator = LinearOperator(PREPEND)
        with pytest.raises(SchemaError):
            operator.apply(Relation.of("path", 3, []), database)

    def test_nonlinear_rule_rejected(self):
        with pytest.raises(RuleStructureError):
            LinearOperator(parse_rule("p(X) :- q(X)."))

    def test_multiplication_is_composition(self, database, identity_relation):
        b = LinearOperator(PREPEND, label="B")
        c = LinearOperator(APPEND, label="C")
        product = b * c
        # (B C) Q == B (C Q) pointwise.
        direct = b.apply(c.apply(identity_relation, database), database)
        assert product.apply(identity_relation, database).rows == direct.rows

    def test_power_zero_is_identity(self, database, identity_relation):
        operator = LinearOperator(PREPEND)
        assert operator.power(0).apply(identity_relation, database).rows == identity_relation.rows

    def test_power_two(self, database, identity_relation):
        operator = LinearOperator(PREPEND)
        twice = operator.apply(operator.apply(identity_relation, database), database)
        assert operator.power(2).apply(identity_relation, database).rows == twice.rows

    def test_cross_predicate_multiplication_rejected(self):
        other = parse_rule("q(X) :- e(X, Y), q(Y).")
        with pytest.raises(RuleStructureError):
            LinearOperator(PREPEND) * LinearOperator(other)


class TestSumIdentityZero:
    def test_sum_is_union(self, database, identity_relation):
        total = SumOperator.of(LinearOperator(PREPEND), LinearOperator(APPEND))
        union = LinearOperator(PREPEND).apply(identity_relation, database).union(
            LinearOperator(APPEND).apply(identity_relation, database)
        )
        assert total.apply(identity_relation, database).rows == union.rows

    def test_sum_flattens(self):
        nested = SumOperator.of(
            SumOperator.of(LinearOperator(PREPEND)), LinearOperator(APPEND)
        )
        assert len(nested.operators) == 2

    def test_sum_requires_compatible_operands(self):
        other = parse_rule("q(X) :- e(X, Y), q(Y).")
        with pytest.raises(RuleStructureError):
            SumOperator.of(LinearOperator(PREPEND), LinearOperator(other))

    def test_identity_operator(self, database, identity_relation):
        identity = IdentityOperator("path", 2)
        assert identity.apply(identity_relation, database) is identity_relation

    def test_zero_operator(self, database, identity_relation):
        zero = ZeroOperator("path", 2)
        assert zero.apply(identity_relation, database).is_empty()

    def test_operators_from_rules_labels(self):
        operators = operators_from_rules([PREPEND, APPEND])
        assert [operator.label for operator in operators] == ["A", "B"]


class TestOrdering:
    def test_operator_leq_by_extra_conjunct(self):
        loose = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        tight = parse_rule("p(X, Y) :- p(U, Y), q(X, U), s(X).")
        assert operator_leq(LinearOperator(tight), LinearOperator(loose))
        assert not operator_leq(LinearOperator(loose), LinearOperator(tight))

    def test_operator_equal_modulo_renaming(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        second = parse_rule("p(A, B) :- p(W, B), q(A, W).")
        assert operator_equal(LinearOperator(first), LinearOperator(second))

    def test_empirical_checks(self, database, identity_relation):
        b = LinearOperator(PREPEND)
        total = SumOperator.of(b, LinearOperator(APPEND))
        assert empirically_leq(b, total, identity_relation, database)
        assert empirically_equal(b, b, identity_relation, database)


class TestClosure:
    def test_closure_apply_matches_seminaive(self, database, identity_relation):
        from repro.engine.seminaive import seminaive_closure

        operator = LinearOperator(PREPEND)
        assert closure_apply(operator, identity_relation, database).rows == seminaive_closure(
            (PREPEND,), identity_relation, database
        ).rows

    def test_closure_of_sum(self, database, identity_relation):
        from repro.engine.seminaive import seminaive_closure

        closure = closure_apply_sum(
            [LinearOperator(PREPEND), LinearOperator(APPEND)], identity_relation, database
        )
        direct = seminaive_closure((PREPEND, APPEND), identity_relation, database)
        assert closure.rows == direct.rows

    def test_closure_product_order(self, database, identity_relation):
        # B* C* Q applies C* first.
        product = closure_apply_product(
            [LinearOperator(PREPEND), LinearOperator(APPEND)], identity_relation, database
        )
        c_first = closure_apply(LinearOperator(APPEND), identity_relation, database)
        expected = closure_apply(LinearOperator(PREPEND), c_first, database)
        assert product.rows == expected.rows

    def test_closure_sum_of_nothing(self, database, identity_relation):
        assert closure_apply_sum([], identity_relation, database) is identity_relation

    def test_bounded_power_apply(self, database, identity_relation):
        operator = LinearOperator(PREPEND)
        one_step = identity_relation.union(
            operator.apply(identity_relation, database).renamed("path")
        )
        assert bounded_power_apply(operator, identity_relation, database, 1).rows == one_step.rows


class TestBoundednessProperties:
    def test_filter_rule_is_torsion(self):
        rule = parse_rule("p(X, Y) :- p(X, Y), cheap(Y).")
        assert is_torsion(rule)
        assert is_uniformly_bounded(rule)
        low, high = torsion_period(rule)
        assert low < high

    def test_chain_rule_is_not_uniformly_bounded(self):
        assert not is_uniformly_bounded(PREPEND, max_power=6)
        assert torsion_period(PREPEND, max_power=6) is None

    def test_witness_reports_equality_flag(self):
        rule = parse_rule("p(X, Y) :- p(X, Y), cheap(Y).")
        witness = boundedness_witness(rule)
        assert witness is not None and witness.equal
        assert "r^" in str(witness)

    def test_swap_rule_is_torsion_with_period_two(self):
        rule = parse_rule("p(X, Y) :- p(Y, X).")
        witness = boundedness_witness(rule, require_equality=True)
        assert witness is not None
        assert witness.high - witness.low == 2
