"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import Atom, Predicate, equality_atom
from repro.datalog.terms import Constant, Variable
from repro.exceptions import SchemaError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestPredicate:
    def test_equality(self):
        assert Predicate("p", 2) == Predicate("p", 2)
        assert Predicate("p", 2) != Predicate("p", 3)
        assert Predicate("p", 2) != Predicate("q", 2)

    def test_str(self):
        assert str(Predicate("edge", 2)) == "edge/2"

    def test_invalid(self):
        with pytest.raises(ValueError):
            Predicate("", 1)
        with pytest.raises(ValueError):
            Predicate("p", -1)


class TestAtomConstruction:
    def test_of_builds_arity_from_arguments(self):
        atom = Atom.of("p", X, Y)
        assert atom.predicate == Predicate("p", 2)
        assert atom.arguments == (X, Y)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Atom(Predicate("p", 3), (X, Y))

    def test_zero_arity(self):
        atom = Atom.of("done")
        assert atom.arity == 0
        assert atom.is_ground()

    def test_name_and_arity_accessors(self):
        atom = Atom.of("edge", X, Constant(3))
        assert atom.name == "edge"
        assert atom.arity == 2


class TestAtomQueries:
    def test_variables_dedupe_in_order(self):
        atom = Atom.of("p", X, Y, X, Z)
        assert atom.variables() == (X, Y, Z)

    def test_constants(self):
        atom = Atom.of("p", Constant(1), X, Constant("a"), Constant(1))
        assert atom.constants() == (Constant(1), Constant("a"))

    def test_is_ground(self):
        assert Atom.of("p", Constant(1), Constant(2)).is_ground()
        assert not Atom.of("p", Constant(1), X).is_ground()

    def test_positions_of(self):
        atom = Atom.of("p", X, Y, X)
        assert atom.positions_of(X) == (0, 2)
        assert atom.positions_of(Z) == ()

    def test_iteration(self):
        atom = Atom.of("p", X, Constant(1))
        assert list(atom) == [X, Constant(1)]

    def test_str(self):
        assert str(Atom.of("p", X, Constant(1))) == "p(X, 1)"


class TestAtomRewriting:
    def test_with_arguments_changes_arity_safely(self):
        atom = Atom.of("p", X, Y)
        shrunk = atom.with_arguments([X])
        assert shrunk.arity == 1
        assert shrunk.name == "p"

    def test_equality_atom(self):
        atom = equality_atom(X, Constant(1))
        assert atom.is_equality()
        assert atom.arguments == (X, Constant(1))

    def test_non_equality_atom(self):
        assert not Atom.of("p", X).is_equality()

    def test_atoms_are_hashable_values(self):
        assert len({Atom.of("p", X, Y), Atom.of("p", X, Y)}) == 1
