"""Tests for the bench-regression gate (benchmarks/check_bench_regression.py).

Locks in the contract the CI gate relies on: a timing series (or whole
entry) present in the committed baseline but missing from a fresh report
fails the run — a recorded series must not silently disappear — while a
series that is new in the current report is accepted.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).parent.parent / "benchmarks"
           / "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
assert _spec is not None and _spec.loader is not None
check_bench_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_regression)


def _write_report(path: pathlib.Path, results: list[dict]) -> pathlib.Path:
    path.write_text(json.dumps({"benchmark": "test", "results": results}))
    return path


def _run(tmp_path, baseline_results, current_results, extra_args=()):
    baseline = _write_report(tmp_path / "baseline.json", baseline_results)
    current = _write_report(tmp_path / "current.json", current_results)
    return check_bench_regression.main(
        ["--baseline", str(baseline), "--current", str(current), *extra_args]
    )


class TestMissingSeries:
    def test_identical_reports_pass(self, tmp_path):
        results = [{"size": 64, "alpha_seconds": 1.0, "beta_seconds": 2.0}]
        assert _run(tmp_path, results, results) == 0

    def test_missing_series_fails(self, tmp_path):
        baseline = [{"size": 64, "alpha_seconds": 1.0, "beta_seconds": 2.0}]
        current = [{"size": 64, "alpha_seconds": 1.0}]
        assert _run(tmp_path, baseline, current) == 1

    def test_missing_entry_fails(self, tmp_path):
        baseline = [
            {"size": 64, "alpha_seconds": 1.0},
            {"size": 128, "alpha_seconds": 2.0},
        ]
        current = [{"size": 64, "alpha_seconds": 1.0}]
        assert _run(tmp_path, baseline, current) == 1

    def test_new_series_accepted(self, tmp_path):
        baseline = [{"size": 64, "alpha_seconds": 1.0}]
        current = [{"size": 64, "alpha_seconds": 1.0, "interned_seconds": 0.5}]
        assert _run(tmp_path, baseline, current) == 0


class TestRegressionDetection:
    def test_differential_slowdown_fails(self, tmp_path):
        baseline = [{"size": 64, "alpha_seconds": 1.0, "beta_seconds": 1.0}]
        current = [{"size": 64, "alpha_seconds": 1.0, "beta_seconds": 2.0}]
        assert _run(tmp_path, baseline, current) == 1

    def test_uniform_slowdown_is_calibrated_out(self, tmp_path):
        baseline = [{"size": 64, "alpha_seconds": 1.0, "beta_seconds": 2.0}]
        current = [{"size": 64, "alpha_seconds": 3.0, "beta_seconds": 6.0}]
        assert _run(tmp_path, baseline, current) == 0

    def test_no_calibrate_compares_raw(self, tmp_path):
        baseline = [{"size": 64, "alpha_seconds": 1.0, "beta_seconds": 2.0}]
        current = [{"size": 64, "alpha_seconds": 3.0, "beta_seconds": 6.0}]
        assert _run(tmp_path, baseline, current, ("--no-calibrate",)) == 1

    def test_noise_floor_skips_tiny_timings(self, tmp_path):
        baseline = [{"size": 64, "alpha_seconds": 0.001}]
        current = [{"size": 64, "alpha_seconds": 0.009}]
        assert _run(tmp_path, baseline, current) == 0


class TestUpdate:
    def test_update_overwrites_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = _write_report(
            tmp_path / "current.json", [{"size": 1, "alpha_seconds": 1.0}]
        )
        code = check_bench_regression.main(
            ["--baseline", str(baseline), "--current", str(current), "--update"]
        )
        assert code == 0
        assert json.loads(baseline.read_text())["results"][0]["size"] == 1


class TestSpeedupFloors:
    """The multi-core speedup floors (--speedup-floor FIELD:MIN).

    Enforcement detects the machine through ``os.cpu_count()`` *and*
    the report's recorded ``cpu_count``; a floor is only a hard gate
    when both sides really had at least two CPUs.
    """

    def _floor_run(self, tmp_path, monkeypatch, *, machine_cpus,
                   report_cpus, speedup, floor="tc_speedup:1.05"):
        monkeypatch.setattr(check_bench_regression.os, "cpu_count",
                            lambda: machine_cpus)
        results = [{"size": 64, "alpha_seconds": 1.0, "tc_speedup": speedup}]
        baseline = _write_report(tmp_path / "baseline.json", results)
        current = tmp_path / "current.json"
        current.write_text(json.dumps({
            "benchmark": "test", "cpu_count": report_cpus, "results": results,
        }))
        return check_bench_regression.main([
            "--baseline", str(baseline), "--current", str(current),
            "--speedup-floor", floor,
        ])

    def test_floor_enforced_on_multicore(self, tmp_path, monkeypatch):
        assert self._floor_run(tmp_path, monkeypatch, machine_cpus=4,
                               report_cpus=4, speedup=1.3) == 0

    def test_floor_failure_on_multicore(self, tmp_path, monkeypatch):
        assert self._floor_run(tmp_path, monkeypatch, machine_cpus=4,
                               report_cpus=4, speedup=0.9) == 1

    def test_floor_skipped_on_single_cpu_machine(self, tmp_path, monkeypatch):
        assert self._floor_run(tmp_path, monkeypatch, machine_cpus=1,
                               report_cpus=4, speedup=0.5) == 0

    def test_floor_skipped_when_report_recorded_one_cpu(self, tmp_path,
                                                        monkeypatch):
        assert self._floor_run(tmp_path, monkeypatch, machine_cpus=4,
                               report_cpus=1, speedup=0.5) == 0

    def test_missing_floor_field_fails_regardless_of_cpus(self, tmp_path,
                                                          monkeypatch):
        assert self._floor_run(tmp_path, monkeypatch, machine_cpus=1,
                               report_cpus=1, speedup=2.0,
                               floor="absent_speedup:1.0") == 1

    def test_malformed_floor_spec_rejected(self, tmp_path, monkeypatch):
        with pytest.raises(SystemExit):
            self._floor_run(tmp_path, monkeypatch, machine_cpus=4,
                            report_cpus=4, speedup=1.0, floor="no-minimum")


class TestLoadValidation:
    def test_report_without_results_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"benchmark": "x"}))
        with pytest.raises(SystemExit):
            check_bench_regression.load_results(path)

    def test_entry_without_size_key_rejected(self, tmp_path):
        path = _write_report(tmp_path / "bad.json", [{"alpha_seconds": 1.0}])
        with pytest.raises(SystemExit):
            check_bench_regression.load_results(path)
