"""Tests for the commutativity tests of Section 5 (core.commutativity)."""

import pytest

from repro.core.commutativity import (
    ConditionClause,
    commute,
    commute_by_definition,
    commute_polynomial,
    compose_both_ways,
    in_restricted_class,
    simple_sufficient_condition,
    sufficient_condition,
)
from repro.cq.containment import is_equivalent
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.exceptions import NotApplicableError
from repro.workloads import scenarios
from repro.workloads.rulegen import random_commuting_pair, random_rule_pair


class TestDefinitionTest:
    def test_example_5_2_commutes(self):
        assert commute_by_definition(*scenarios.example_5_2_rules())

    def test_example_5_3_commutes(self):
        assert commute_by_definition(*scenarios.example_5_3_rules())

    def test_example_5_4_commutes(self):
        assert commute_by_definition(*scenarios.example_5_4_rules())

    def test_noncommuting_pair(self):
        first = parse_rule("p(X, Y) :- a(X, U), p(U, Y).")
        second = parse_rule("p(X, Y) :- b(X, U), p(U, Y).")
        assert not commute_by_definition(first, second)

    def test_rule_commutes_with_itself(self):
        rule = parse_rule("p(X, Y) :- a(X, U), p(U, Y).")
        assert commute_by_definition(rule, rule)

    def test_compose_both_ways_returns_both_composites(self):
        first, second = scenarios.example_5_2_rules()
        composite_12, composite_21 = compose_both_ways(first, second)
        expected = parse_rule("p(X, Y) :- p(U, V), q(X, U), r(V, Y).")
        assert is_equivalent(composite_12, expected)
        assert is_equivalent(composite_21, expected)


class TestSufficientCondition:
    def test_example_5_2_clause_a(self):
        report = sufficient_condition(*scenarios.example_5_2_rules())
        assert report.satisfied and report.exact
        assert all(
            verdict.clause == ConditionClause.FREE_ONE_PERSISTENT
            for verdict in report.verdicts.values()
        )

    def test_example_5_3_clauses(self):
        report = sufficient_condition(*scenarios.example_5_3_rules())
        assert report.satisfied
        clauses = {
            variable.name: verdict.clause
            for variable, verdict in report.verdicts.items()
        }
        assert clauses["Y"] == ConditionClause.LINK_ONE_PERSISTENT_BOTH
        assert clauses["X"] == ConditionClause.FREE_ONE_PERSISTENT
        assert clauses["Z"] == ConditionClause.FREE_ONE_PERSISTENT

    def test_example_5_4_condition_fails_but_rules_commute(self):
        report = sufficient_condition(*scenarios.example_5_4_rules())
        assert not report.satisfied
        assert not report.exact  # repeated nonrecursive predicate q
        assert commute_by_definition(*scenarios.example_5_4_rules())

    def test_clause_c_free_persistent_cycles(self):
        # Both rules permute two free columns; the permutations commute.
        first = parse_rule("p(X, Y, Z) :- p(Y, X, Z), a(Z).")
        second = parse_rule("p(X, Y, Z) :- p(Y, X, Z), b(Z).")
        report = sufficient_condition(first, second)
        assert report.satisfied
        assert report.verdicts[Variable("X")].clause == ConditionClause.FREE_PERSISTENT_COMMUTING

    def test_clause_c_violated_when_permutations_do_not_commute(self):
        # A 3-cycle against a transposition do not commute as permutations.
        first = parse_rule("p(X, Y, Z) :- p(Y, Z, X), a(W), q(W).")
        second = parse_rule("p(X, Y, Z) :- p(Y, X, Z), b(W), s(W).")
        report = sufficient_condition(first, second)
        assert not report.satisfied
        assert not commute_by_definition(first, second)

    def test_clause_d_equivalent_bridges(self):
        # X is general in both rules with an identical bridge (same q atom);
        # the second position differs but is free 1-persistent in one rule.
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        second = parse_rule("p(X, Y) :- p(U, V), q(X, U), r(V, Y).")
        report = sufficient_condition(first, second)
        assert report.satisfied
        assert report.verdicts[Variable("X")].clause == ConditionClause.EQUIVALENT_BRIDGES
        assert commute_by_definition(first, second)

    def test_failing_variables_reported(self):
        first = parse_rule("p(X, Y) :- a(X, U), p(U, Y).")
        second = parse_rule("p(X, Y) :- b(X, U), p(U, Y).")
        report = sufficient_condition(first, second)
        assert Variable("X") in report.failing_variables()

    def test_explain_mentions_every_variable(self):
        report = sufficient_condition(*scenarios.example_5_3_rules())
        text = report.explain()
        for variable in report.verdicts:
            assert variable.name in text


class TestPolynomialTest:
    def test_agrees_with_definition_on_restricted_pairs(self, rng):
        for index in range(8):
            if index % 2 == 0:
                first, second = random_commuting_pair(3, rng)
            else:
                first, second = random_rule_pair(3, 2, rng)
            if not in_restricted_class(first, second):
                continue
            assert commute_polynomial(first, second) == commute_by_definition(first, second)

    def test_not_applicable_outside_restricted_class(self):
        first, second = scenarios.example_5_4_rules()
        with pytest.raises(NotApplicableError):
            commute_polynomial(first, second)

    def test_negative_decision_is_exact(self):
        first = parse_rule("p(X, Y) :- a(X, U), p(U, Y).")
        second = parse_rule("p(X, Y) :- b(X, U), p(U, Y).")
        assert not commute_polynomial(first, second)


class TestDispatcher:
    def test_commute_uses_definition_fallback(self):
        first, second = scenarios.example_5_4_rules()
        assert commute(first, second)

    def test_commute_respects_exact_negative(self):
        first = parse_rule("p(X, Y) :- a(X, U), p(U, Y).")
        second = parse_rule("p(X, Y) :- b(X, U), p(U, Y).")
        assert not commute(first, second)

    def test_commute_accepts_precomputed_report(self):
        first, second = scenarios.example_5_2_rules()
        report = sufficient_condition(first, second)
        assert commute(first, second, report=report)


class TestWeakerBaselineCondition:
    def test_detects_example_5_2(self):
        assert simple_sufficient_condition(*scenarios.example_5_2_rules())

    def test_misses_clause_d_pairs(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        second = parse_rule("p(X, Y) :- p(U, V), q(X, U), r(V, Y).")
        assert not simple_sufficient_condition(first, second)
        assert sufficient_condition(first, second).satisfied

    def test_never_claims_commutativity_wrongly(self, rng):
        for _ in range(5):
            first, second = random_rule_pair(3, 2, rng)
            if simple_sufficient_condition(first, second):
                assert commute_by_definition(first, second)
