"""Unit tests for repro.datalog.composition (rule composition and powers)."""

import pytest

from repro.cq.containment import is_equivalent
from repro.datalog.composition import compose, compose_chain, identity_rule, power
from repro.datalog.normalize import standardize_pair
from repro.datalog.parser import parse_rule
from repro.datalog.rules import LinearRuleView
from repro.exceptions import RuleStructureError


class TestCompose:
    def test_transitive_closure_composite_shape(self):
        outer = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        composite = compose(outer, outer)
        assert composite.head == outer.head
        assert [atom.name for atom in composite.body].count("e") == 2
        assert [atom.name for atom in composite.body].count("p") == 1

    def test_composite_is_still_linear(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        assert compose(rule, rule).is_linear_recursive()

    def test_composition_matches_paper_example_5_2(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        second = parse_rule("p(X, Y) :- p(X, V), r(V, Y).")
        first, second = standardize_pair(first, second)
        expected = parse_rule("p(X, Y) :- p(U, V), q(X, U), r(V, Y).")
        assert is_equivalent(compose(first, second), expected)
        assert is_equivalent(compose(second, first), expected)

    def test_composition_order_matters_for_noncommuting_rules(self):
        first = parse_rule("p(X, Y) :- a(X, Z), p(Z, Y).")
        second = parse_rule("p(X, Y) :- b(X, Z), p(Z, Y).")
        first, second = standardize_pair(first, second)
        assert not is_equivalent(compose(first, second), compose(second, first))

    def test_different_predicates_rejected(self):
        first = parse_rule("p(X) :- q(X), p(X).")
        second = parse_rule("s(X) :- q(X), s(X).")
        with pytest.raises(RuleStructureError):
            compose(first, second)

    def test_inner_nondistinguished_variables_renamed(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        composite = compose(rule, rule)
        # The two 'e' atoms must not share their nondistinguished endpoint.
        e_atoms = [atom for atom in composite.body if atom.name == "e"]
        assert e_atoms[0].arguments[1] != e_atoms[1].arguments[1] or (
            e_atoms[0].arguments[0] != e_atoms[1].arguments[0]
        )

    def test_repeated_head_variables_rejected(self):
        outer = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        inner = parse_rule("p(X, X) :- e(X, Z), p(Z, X).")
        with pytest.raises(RuleStructureError):
            compose(outer, inner)


class TestPower:
    def test_power_one_is_the_rule(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        assert power(rule, 1) == rule

    def test_power_zero_is_identity(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        identity = power(rule, 0)
        assert is_equivalent(identity, identity_rule(LinearRuleView(rule)))

    def test_power_counts_nonrecursive_atoms(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        cubed = power(rule, 3)
        assert [atom.name for atom in cubed.body].count("e") == 3

    def test_negative_power_rejected(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        with pytest.raises(ValueError):
            power(rule, -1)

    def test_power_associativity(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        assert is_equivalent(power(rule, 4), compose(power(rule, 2), power(rule, 2)))


class TestComposeChain:
    def test_chain_of_three(self):
        a = parse_rule("p(X, Y) :- a(X, Z), p(Z, Y).")
        b = parse_rule("p(X, Y) :- b(X, Z), p(Z, Y).")
        c = parse_rule("p(X, Y) :- c(X, Z), p(Z, Y).")
        chained = compose_chain(a, b, c)
        names = [atom.name for atom in chained.body if atom.name != "p"]
        assert names == ["a", "b", "c"]

    def test_chain_requires_at_least_one(self):
        with pytest.raises(ValueError):
            compose_chain()

    def test_chain_of_one_is_identityish(self):
        a = parse_rule("p(X, Y) :- a(X, Z), p(Z, Y).")
        assert compose_chain(a) == a


class TestIdentityRule:
    def test_identity_rule_shape(self):
        view = LinearRuleView(parse_rule("p(X, Y) :- e(X, Z), p(Z, Y)."))
        identity = identity_rule(view)
        assert identity.head == identity.body[0]
        assert len(identity.body) == 1

    def test_identity_composes_neutrally(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        identity = identity_rule(LinearRuleView(rule))
        assert is_equivalent(compose(rule, identity), rule)
        assert is_equivalent(compose(identity, rule), rule)
