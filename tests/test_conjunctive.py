"""Unit tests for the conjunctive-query evaluator."""

import pytest

from repro.datalog.parser import parse_rule
from repro.engine.conjunctive import (
    evaluate_rule,
    evaluate_rule_multiset,
    evaluate_rule_multiset_interpreted,
)
from repro.engine.statistics import JoinCounters
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.relation import Relation


@pytest.fixture
def graph_db():
    return Database.of(
        Relation.of("edge", 2, [(1, 2), (2, 3), (3, 4), (2, 4)]),
        Relation.of("colour", 2, [(2, "red"), (3, "blue"), (4, "red")]),
        Relation.of("label", 1, [(2,), (4,)]),
    )


class TestBasicEvaluation:
    def test_single_atom(self, graph_db):
        rule = parse_rule("out(X, Y) :- edge(X, Y).")
        assert evaluate_rule(rule, graph_db).rows == graph_db.relation("edge").rows

    def test_join(self, graph_db):
        rule = parse_rule("two(X, Z) :- edge(X, Y), edge(Y, Z).")
        assert evaluate_rule(rule, graph_db).rows == frozenset(
            {(1, 3), (1, 4), (2, 4), (2, 4), (1, 4)}
        )

    def test_three_way_join(self, graph_db):
        rule = parse_rule("r(X, C) :- edge(X, Y), edge(Y, Z), colour(Z, C).")
        result = evaluate_rule(rule, graph_db)
        assert (1, "blue") in result
        assert (1, "red") in result

    def test_constant_in_body(self, graph_db):
        rule = parse_rule("red(X) :- colour(X, red).")
        assert evaluate_rule(rule, graph_db).rows == frozenset({(2,), (4,)})

    def test_constant_in_head(self, graph_db):
        rule = parse_rule("tagged(X, yes) :- label(X).")
        assert evaluate_rule(rule, graph_db).rows == frozenset({(2, "yes"), (4, "yes")})

    def test_repeated_variable_in_atom(self, graph_db):
        database = graph_db.with_relation(Relation.of("pair", 2, [(1, 1), (1, 2)]))
        rule = parse_rule("diag(X) :- pair(X, X).")
        assert evaluate_rule(rule, database).rows == frozenset({(1,)})

    def test_none_bound_value_joins_correctly(self, graph_db):
        # Regression: a variable bound to None used to be treated as
        # unbound by _match_row and silently rebound, corrupting joins
        # over relations containing None.  Exercise the interpreted path
        # explicitly — evaluate_rule routes through the compiled one.
        database = graph_db.with_relation(
            Relation.of("p", 2, [(1, None)])
        ).with_relation(Relation.of("q", 2, [(None, 2), (3, 4)]))
        rule = parse_rule("out(X, Z) :- p(X, Y), q(Y, Z).")
        interpreted = evaluate_rule_multiset_interpreted(rule, database)
        assert frozenset(interpreted) == frozenset({(1, 2)})
        assert evaluate_rule(rule, database).rows == frozenset({(1, 2)})

    def test_cartesian_product(self, graph_db):
        rule = parse_rule("prod(X, Y) :- label(X), label(Y).")
        assert len(evaluate_rule(rule, graph_db)) == 4

    def test_empty_relation_gives_empty_result(self, graph_db):
        rule = parse_rule("out(X) :- missing(X).")
        assert evaluate_rule(rule, graph_db.with_relation(Relation.empty("missing", 1))).is_empty()

    def test_unknown_relation_defaults_to_empty(self, graph_db):
        rule = parse_rule("out(X) :- never_seen(X).")
        assert evaluate_rule(rule, graph_db).is_empty()


class TestEqualityAtoms:
    def test_variable_constant_equality(self, graph_db):
        rule = parse_rule("out(X, Y) :- edge(X, Y), X = 1.")
        assert evaluate_rule(rule, graph_db).rows == frozenset({(1, 2)})

    def test_variable_variable_equality(self, graph_db):
        rule = parse_rule("out(X) :- edge(X, Y), label(Z), Y = Z.")
        assert evaluate_rule(rule, graph_db).rows == frozenset({(1,), (2,), (3,)})

    def test_unsatisfiable_equality(self, graph_db):
        rule = parse_rule("out(X, Y) :- edge(X, Y), X = 99.")
        assert evaluate_rule(rule, graph_db).is_empty()


class TestOverridesAndSafety:
    def test_override_replaces_stored_relation(self, graph_db):
        rule = parse_rule("out(X, Y) :- edge(X, Y).")
        override = {"edge": Relation.of("edge", 2, [(7, 8)])}
        assert evaluate_rule(rule, graph_db, overrides=override).rows == frozenset({(7, 8)})

    def test_override_arity_mismatch(self, graph_db):
        rule = parse_rule("out(X, Y) :- edge(X, Y).")
        with pytest.raises(EvaluationError):
            evaluate_rule(rule, graph_db, overrides={"edge": Relation.of("edge", 3, [])})

    def test_unsafe_rule_rejected(self, graph_db):
        with pytest.raises(EvaluationError):
            evaluate_rule(parse_rule("out(X, Y) :- edge(X, X)."), graph_db)

    def test_ground_fact_evaluation(self, graph_db):
        assert evaluate_rule(parse_rule("out(1, 2)."), graph_db).rows == frozenset({(1, 2)})

    def test_non_ground_fact_rejected(self, graph_db):
        with pytest.raises(EvaluationError):
            evaluate_rule(parse_rule("out(X)."), graph_db)


class TestMultisetAndCounters:
    def test_multiset_counts_every_derivation(self):
        # A diamond: (1, 4) is derivable through 2 and through 3.
        database = Database.of(Relation.of("edge", 2, [(1, 2), (1, 3), (2, 4), (3, 4)]))
        rule = parse_rule("two(X, Z) :- edge(X, Y), edge(Y, Z).")
        emissions = evaluate_rule_multiset(rule, database)
        assert emissions.count((1, 4)) == 2

    def test_counters_accumulate(self, graph_db):
        rule = parse_rule("two(X, Z) :- edge(X, Y), edge(Y, Z).")
        counters = JoinCounters()
        evaluate_rule(rule, graph_db, counters=counters)
        assert counters.tuples_emitted == len(evaluate_rule_multiset(rule, graph_db))
        assert counters.rows_probed >= counters.tuples_emitted

    def test_counters_merge(self):
        first = JoinCounters(rows_probed=1, bindings_extended=2, tuples_emitted=3)
        second = JoinCounters(rows_probed=10, bindings_extended=20, tuples_emitted=30)
        first.merge(second)
        assert (first.rows_probed, first.bindings_extended, first.tuples_emitted) == (11, 22, 33)
