"""Unit tests for conjunctive-query containment and equivalence."""

from repro.cq.containment import is_contained_in, is_equivalent, strictly_contained_in
from repro.cq.minimize import is_minimal, minimize_rule
from repro.datalog.parser import parse_rule


class TestContainment:
    def test_more_constrained_is_contained(self):
        tight = parse_rule("p(X) :- e(X, Z), f(Z).")
        loose = parse_rule("p(X) :- e(X, Z).")
        assert is_contained_in(tight, loose)
        assert not is_contained_in(loose, tight)

    def test_containment_is_reflexive(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), e(Z, Y).")
        assert is_contained_in(rule, rule)

    def test_containment_with_constants(self):
        constant_rule = parse_rule("p(X) :- e(X, a).")
        variable_rule = parse_rule("p(X) :- e(X, Z).")
        assert is_contained_in(constant_rule, variable_rule)
        assert not is_contained_in(variable_rule, constant_rule)

    def test_strict_containment(self):
        tight = parse_rule("p(X) :- e(X, Z), f(Z).")
        loose = parse_rule("p(X) :- e(X, Z).")
        assert strictly_contained_in(tight, loose)
        assert not strictly_contained_in(loose, loose)

    def test_incomparable_rules(self):
        left = parse_rule("p(X) :- e(X, Z).")
        right = parse_rule("p(X) :- f(X, Z).")
        assert not is_contained_in(left, right)
        assert not is_contained_in(right, left)


class TestEquivalence:
    def test_renamed_rules_are_equivalent(self):
        first = parse_rule("p(X, Y) :- e(X, Z), e(Z, Y).")
        second = parse_rule("p(X, Y) :- e(X, W), e(W, Y).")
        assert is_equivalent(first, second)

    def test_redundant_atom_preserves_equivalence(self):
        minimal = parse_rule("p(X) :- e(X, Z).")
        redundant = parse_rule("p(X) :- e(X, Z), e(X, W).")
        assert is_equivalent(minimal, redundant)

    def test_non_equivalent_rules(self):
        chain2 = parse_rule("p(X, Y) :- e(X, Z), e(Z, Y).")
        chain3 = parse_rule("p(X, Y) :- e(X, Z), e(Z, W), e(W, Y).")
        assert not is_equivalent(chain2, chain3)

    def test_body_order_is_irrelevant(self):
        first = parse_rule("p(X) :- a(X), b(X), c(X).")
        second = parse_rule("p(X) :- c(X), a(X), b(X).")
        assert is_equivalent(first, second)


class TestMinimization:
    def test_redundant_atom_removed(self):
        redundant = parse_rule("p(X) :- e(X, Z), e(X, W).")
        core = minimize_rule(redundant)
        assert len(core.body) == 1
        assert is_equivalent(core, redundant)

    def test_minimal_rule_unchanged(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), e(Z, Y).")
        assert len(minimize_rule(rule).body) == 2
        assert is_minimal(rule)

    def test_classic_triangle_core(self):
        # The path of length 2 folds onto the edge when the head only
        # exposes the start point.
        rule = parse_rule("p(X) :- e(X, Y), e(Y, Z), e(X, W).")
        core = minimize_rule(rule)
        assert is_equivalent(core, rule)
        assert len(core.body) <= 2

    def test_head_variables_keep_atoms_alive(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), e(X, Y).")
        core = minimize_rule(rule)
        assert any("Y" in str(atom) for atom in core.body)

    def test_is_minimal_detects_redundancy(self):
        assert not is_minimal(parse_rule("p(X) :- e(X, Z), e(X, W)."))
