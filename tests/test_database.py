"""Unit tests for repro.storage.database, index and selection."""

import pytest

from repro.datalog.parser import parse_program, parse_rule
from repro.exceptions import SchemaError
from repro.storage.database import Database
from repro.storage.index import HashIndex
from repro.storage.relation import Relation
from repro.storage.selection import (
    ConjunctiveSelection,
    EqualitySelection,
    PositionEqualitySelection,
    TrueSelection,
)


class TestDatabaseConstruction:
    def test_of(self):
        database = Database.of(Relation.of("e", 2, [(1, 2)]))
        assert database.has_relation("e")
        assert len(database) == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Database.of(Relation.empty("e", 2), Relation.empty("e", 2))

    def test_name_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Database({"x": Relation.empty("y", 1)})

    def test_from_facts(self):
        program = parse_program("edge(1, 2).\nedge(2, 3).\nnode(1).")
        database = Database.from_program(program)
        assert len(database.relation("edge")) == 2
        assert len(database.relation("node")) == 1

    def test_from_facts_rejects_rules_and_variables(self):
        with pytest.raises(SchemaError):
            Database.from_facts([parse_rule("p(X) :- q(X).")])
        with pytest.raises(SchemaError):
            Database.from_facts([parse_rule("p(X).")])

    def test_from_facts_rejects_inconsistent_arity(self):
        with pytest.raises(SchemaError):
            Database.from_facts([parse_rule("p(1)."), parse_rule("p(1, 2).")])


class TestDatabaseAccess:
    def test_missing_relation_with_arity_is_empty(self):
        database = Database({})
        relation = database.relation("ghost", 2)
        assert relation.is_empty() and relation.arity == 2

    def test_missing_relation_without_arity_raises(self):
        with pytest.raises(SchemaError):
            Database({}).relation("ghost")

    def test_arity_check_on_lookup(self):
        database = Database.of(Relation.of("e", 2, [(1, 2)]))
        with pytest.raises(SchemaError):
            database.relation("e", 3)

    def test_with_and_without_relation(self):
        database = Database({}).with_relation(Relation.of("e", 2, [(1, 2)]))
        assert database.has_relation("e")
        assert not database.without_relation("e").has_relation("e")

    def test_merge_unions_shared_relations(self):
        first = Database.of(Relation.of("e", 2, [(1, 2)]))
        second = Database.of(Relation.of("e", 2, [(2, 3)]), Relation.of("f", 1, [(1,)]))
        merged = first.merge(second)
        assert len(merged.relation("e")) == 2
        assert merged.has_relation("f")

    def test_totals_and_domain(self):
        database = Database.of(
            Relation.of("e", 2, [(1, 2)]), Relation.of("f", 1, [(7,)])
        )
        assert database.total_rows() == 2
        assert database.active_domain() == frozenset({1, 2, 7})
        assert database.names() == frozenset({"e", "f"})


class TestHashIndex:
    def test_lookup(self):
        relation = Relation.of("e", 2, [(1, 2), (1, 3), (2, 3)])
        index = HashIndex(relation, [0])
        assert sorted(index.lookup([1])) == [(1, 2), (1, 3)]
        assert index.lookup([9]) == []

    def test_multi_column_and_empty_key(self):
        relation = Relation.of("e", 2, [(1, 2), (1, 3)])
        assert HashIndex(relation, [0, 1]).lookup([1, 3]) == [(1, 3)]
        assert len(HashIndex(relation, []).lookup([])) == 2

    def test_keys(self):
        relation = Relation.of("e", 2, [(1, 2), (2, 3)])
        assert set(HashIndex(relation, [0]).keys()) == {(1,), (2,)}


class TestSelections:
    def test_equality_selection(self):
        relation = Relation.of("r", 2, [(1, 2), (3, 4)])
        selection = EqualitySelection(0, 1)
        assert selection.apply(relation).rows == frozenset({(1, 2)})
        assert selection.positions() == frozenset({0})

    def test_position_equality_selection(self):
        relation = Relation.of("r", 2, [(1, 1), (1, 2)])
        selection = PositionEqualitySelection(0, 1)
        assert selection(relation).rows == frozenset({(1, 1)})

    def test_conjunction(self):
        relation = Relation.of("r", 2, [(1, 1), (1, 2), (2, 2)])
        selection = EqualitySelection(0, 1).conjoin(PositionEqualitySelection(0, 1))
        assert isinstance(selection, ConjunctiveSelection)
        assert selection.apply(relation).rows == frozenset({(1, 1)})
        assert selection.positions() == frozenset({0, 1})

    def test_true_selection(self):
        relation = Relation.of("r", 1, [(1,), (2,)])
        assert TrueSelection().apply(relation).rows == relation.rows
        assert TrueSelection().positions() == frozenset()

    def test_selection_str(self):
        assert "0" in str(EqualitySelection(0, "a"))
