"""Unit tests for repro.storage.database, index and selection."""

import pytest

from repro.datalog.parser import parse_program, parse_rule
from repro.exceptions import SchemaError
from repro.storage.database import Database
from repro.storage.index import HashIndex
from repro.storage.relation import Relation
from repro.storage.selection import (
    ConjunctiveSelection,
    EqualitySelection,
    PositionEqualitySelection,
    TrueSelection,
)


class TestDatabaseConstruction:
    def test_of(self):
        database = Database.of(Relation.of("e", 2, [(1, 2)]))
        assert database.has_relation("e")
        assert len(database) == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Database.of(Relation.empty("e", 2), Relation.empty("e", 2))

    def test_name_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Database({"x": Relation.empty("y", 1)})

    def test_from_facts(self):
        program = parse_program("edge(1, 2).\nedge(2, 3).\nnode(1).")
        database = Database.from_program(program)
        assert len(database.relation("edge")) == 2
        assert len(database.relation("node")) == 1

    def test_from_facts_rejects_rules_and_variables(self):
        with pytest.raises(SchemaError):
            Database.from_facts([parse_rule("p(X) :- q(X).")])
        with pytest.raises(SchemaError):
            Database.from_facts([parse_rule("p(X).")])

    def test_from_facts_rejects_inconsistent_arity(self):
        with pytest.raises(SchemaError):
            Database.from_facts([parse_rule("p(1)."), parse_rule("p(1, 2).")])


class TestDatabaseAccess:
    def test_missing_relation_with_arity_is_empty(self):
        database = Database({})
        relation = database.relation("ghost", 2)
        assert relation.is_empty() and relation.arity == 2

    def test_missing_relation_without_arity_raises(self):
        with pytest.raises(SchemaError):
            Database({}).relation("ghost")

    def test_arity_check_on_lookup(self):
        database = Database.of(Relation.of("e", 2, [(1, 2)]))
        with pytest.raises(SchemaError):
            database.relation("e", 3)

    def test_with_and_without_relation(self):
        database = Database({}).with_relation(Relation.of("e", 2, [(1, 2)]))
        assert database.has_relation("e")
        assert not database.without_relation("e").has_relation("e")

    def test_merge_unions_shared_relations(self):
        first = Database.of(Relation.of("e", 2, [(1, 2)]))
        second = Database.of(Relation.of("e", 2, [(2, 3)]), Relation.of("f", 1, [(1,)]))
        merged = first.merge(second)
        assert len(merged.relation("e")) == 2
        assert merged.has_relation("f")

    def test_totals_and_domain(self):
        database = Database.of(
            Relation.of("e", 2, [(1, 2)]), Relation.of("f", 1, [(7,)])
        )
        assert database.total_rows() == 2
        assert database.active_domain() == frozenset({1, 2, 7})
        assert database.names() == frozenset({"e", "f"})


class TestIndexCache:
    def test_index_cached_per_positions(self):
        database = Database.of(Relation.of("e", 2, [(1, 2), (2, 3)]))
        first = database.index("e", 2, (0,))
        assert database.index("e", 2, (0,)) is first
        assert database.index("e", 2, (1,)) is not first

    def test_index_rebuilt_when_relation_replaced_in_place(self):
        """Regression: swapping a relation under the same name must not
        keep serving the index built over the old relation object."""
        database = Database.of(Relation.of("e", 2, [(1, 2)]))
        stale = database.index("e", 2, (0,))
        assert stale.lookup((1,)) == [(1, 2)]
        # In-place replacement (relations is an ordinary dict): the cache
        # entry's generation (relation identity) no longer matches.
        database.relations["e"] = Relation.of("e", 2, [(1, 9), (4, 5)])
        fresh = database.index("e", 2, (0,))
        assert fresh is not stale
        assert sorted(fresh.lookup((1,))) == [(1, 9)]
        assert fresh.lookup((4,)) == [(4, 5)]
        # And the fresh index is now the cached one.
        assert database.index("e", 2, (0,)) is fresh

    def test_absent_relation_index_is_stable_and_empty(self):
        database = Database({})
        first = database.index("ghost", 2, (0,))
        assert first.lookup((1,)) == []
        assert database.index("ghost", 2, (0,)) is first

    def test_absent_then_added_in_place_rebuilds(self):
        database = Database({})
        empty = database.index("ghost", 2, (0,))
        database.relations["ghost"] = Relation.of("ghost", 2, [(1, 2)])
        rebuilt = database.index("ghost", 2, (0,))
        assert rebuilt is not empty
        assert rebuilt.lookup((1,)) == [(1, 2)]

    def test_wrong_arity_request_still_raises(self):
        database = Database.of(Relation.of("e", 2, [(1, 2)]))
        database.index("e", 2, (0,))
        with pytest.raises(SchemaError):
            database.index("e", 3, (0,))


class TestHashIndex:
    def test_lookup(self):
        relation = Relation.of("e", 2, [(1, 2), (1, 3), (2, 3)])
        index = HashIndex(relation, [0])
        assert sorted(index.lookup([1])) == [(1, 2), (1, 3)]
        assert index.lookup([9]) == []

    def test_multi_column_and_empty_key(self):
        relation = Relation.of("e", 2, [(1, 2), (1, 3)])
        assert HashIndex(relation, [0, 1]).lookup([1, 3]) == [(1, 3)]
        assert len(HashIndex(relation, []).lookup([])) == 2

    def test_keys(self):
        relation = Relation.of("e", 2, [(1, 2), (2, 3)])
        assert set(HashIndex(relation, [0]).keys()) == {(1,), (2,)}


class TestSelections:
    def test_equality_selection(self):
        relation = Relation.of("r", 2, [(1, 2), (3, 4)])
        selection = EqualitySelection(0, 1)
        assert selection.apply(relation).rows == frozenset({(1, 2)})
        assert selection.positions() == frozenset({0})

    def test_position_equality_selection(self):
        relation = Relation.of("r", 2, [(1, 1), (1, 2)])
        selection = PositionEqualitySelection(0, 1)
        assert selection(relation).rows == frozenset({(1, 1)})

    def test_conjunction(self):
        relation = Relation.of("r", 2, [(1, 1), (1, 2), (2, 2)])
        selection = EqualitySelection(0, 1).conjoin(PositionEqualitySelection(0, 1))
        assert isinstance(selection, ConjunctiveSelection)
        assert selection.apply(relation).rows == frozenset({(1, 1)})
        assert selection.positions() == frozenset({0, 1})

    def test_true_selection(self):
        relation = Relation.of("r", 1, [(1,), (2,)])
        assert TrueSelection().apply(relation).rows == relation.rows
        assert TrueSelection().positions() == frozenset()

    def test_selection_str(self):
        assert "0" in str(EqualitySelection(0, "a"))
