"""Tests for decomposed evaluation and the separable algorithm engine."""

import pytest

from repro.datalog.parser import parse_rule
from repro.engine.decomposed import decomposed_closure, pairwise_decomposed_closure
from repro.engine.seminaive import seminaive_closure
from repro.engine.separable import direct_selection_evaluate, separable_evaluate
from repro.engine.statistics import EvaluationStatistics
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.selection import EqualitySelection

PREPEND = parse_rule("path(X, Y) :- edge(X, U), path(U, Y).")
APPEND = parse_rule("path(X, Y) :- path(X, V), hop(V, Y).")


@pytest.fixture
def diamond_db():
    edge = Relation.of("edge", 2, [(0, 1), (0, 2), (1, 3), (2, 3)])
    hop = Relation.of("hop", 2, [(3, 4), (4, 5), (3, 5)])
    return Database.of(edge, hop)


@pytest.fixture
def initial():
    return Relation.of("path", 2, [(i, i) for i in range(6)])


class TestDecomposedClosure:
    def test_matches_direct_closure(self, diamond_db, initial):
        direct = seminaive_closure((PREPEND, APPEND), initial, diamond_db)
        decomposed = decomposed_closure([(PREPEND,), (APPEND,)], initial, diamond_db)
        assert direct.rows == decomposed.rows

    def test_pairwise_wrapper(self, diamond_db, initial):
        direct = seminaive_closure((PREPEND, APPEND), initial, diamond_db)
        decomposed = pairwise_decomposed_closure((PREPEND,), (APPEND,), initial, diamond_db)
        assert direct.rows == decomposed.rows

    def test_rightmost_group_runs_first(self, diamond_db, initial):
        statistics = EvaluationStatistics()
        decomposed_closure(
            [(PREPEND,), (APPEND,)], initial, diamond_db, statistics,
            phase_names=["outer", "inner"],
        )
        assert set(statistics.phases) == {"outer", "inner"}
        # The inner (rightmost) phase starts from the initial relation.
        assert statistics.phases["inner"].initial_size == len(initial)

    def test_duplicates_never_exceed_direct(self, diamond_db, initial):
        direct_stats = EvaluationStatistics()
        seminaive_closure((PREPEND, APPEND), initial, diamond_db, direct_stats)
        decomposed_stats = EvaluationStatistics()
        decomposed_closure([(PREPEND,), (APPEND,)], initial, diamond_db, decomposed_stats)
        assert decomposed_stats.duplicates <= direct_stats.duplicates

    def test_three_phase_decomposition(self):
        # Three mutually commuting operators, one per column of a 3-ary
        # predicate (each column is free 1-persistent in the other rules).
        rules = (
            parse_rule("t(X, Y, Z) :- t(U, Y, Z), a(X, U)."),
            parse_rule("t(X, Y, Z) :- t(X, V, Z), b(V, Y)."),
            parse_rule("t(X, Y, Z) :- t(X, Y, W), c(W, Z)."),
        )
        database = Database.of(
            Relation.of("a", 2, [(1, 0), (2, 1)]),
            Relation.of("b", 2, [(0, 1), (1, 2)]),
            Relation.of("c", 2, [(0, 1), (1, 2)]),
        )
        initial = Relation.of("t", 3, [(0, 0, 0)])
        direct = seminaive_closure(rules, initial, database)
        phased = decomposed_closure([(rules[0],), (rules[1],), (rules[2],)], initial, database)
        assert direct.rows == phased.rows
        assert len(direct) == 27

    def test_phase_name_count_checked(self, diamond_db, initial):
        with pytest.raises(ValueError):
            decomposed_closure(
                [(PREPEND,), (APPEND,)], initial, diamond_db, phase_names=["only-one"]
            )

    def test_single_group_is_plain_closure(self, diamond_db, initial):
        single = decomposed_closure([(PREPEND, APPEND)], initial, diamond_db)
        direct = seminaive_closure((PREPEND, APPEND), initial, diamond_db)
        assert single.rows == direct.rows


class TestSeparableEvaluation:
    def test_matches_direct_selection(self, diamond_db, initial):
        selection = EqualitySelection(0, 0)
        direct = direct_selection_evaluate((PREPEND, APPEND), selection, initial, diamond_db)
        separable = separable_evaluate(
            (APPEND,), (PREPEND,), selection, initial, diamond_db, push_into_initial=False
        )
        assert direct.rows == separable.rows

    def test_push_into_initial_when_selection_commutes_with_inner(self, diamond_db, initial):
        # Selection on position 0 commutes with APPEND (X is 1-persistent
        # there), so APPEND can be the inner operator with pushing enabled.
        selection = EqualitySelection(0, 0)
        direct = direct_selection_evaluate((PREPEND, APPEND), selection, initial, diamond_db)
        separable = separable_evaluate(
            (PREPEND,), (APPEND,), selection, initial, diamond_db, push_into_initial=True
        )
        # PREPEND does not commute with the selection, so this ordering is
        # not covered by Theorem 4.1; the test documents that the engine
        # computes exactly the algebraic expression it was given.
        assert separable.rows <= direct.rows

    def test_valid_theorem_4_1_instance(self, diamond_db, initial):
        # Outer = APPEND (selection commutes with it), inner = PREPEND.
        selection = EqualitySelection(0, 0)
        direct = direct_selection_evaluate((PREPEND, APPEND), selection, initial, diamond_db)
        separable = separable_evaluate(
            (APPEND,), (PREPEND,), selection, initial, diamond_db, push_into_initial=False
        )
        assert separable.rows == direct.rows

    def test_separable_does_less_join_work(self, initial):
        edge = Relation.of("edge", 2, [(i, i + 1) for i in range(20)])
        hop = Relation.of("hop", 2, [(i, i + 1) for i in range(20)])
        database = Database.of(edge, hop)
        big_initial = Relation.of("path", 2, [(i, i) for i in range(21)])
        selection = EqualitySelection(0, 0)
        direct_stats = EvaluationStatistics()
        direct_selection_evaluate((PREPEND, APPEND), selection, big_initial, database, direct_stats)
        separable_stats = EvaluationStatistics()
        separable_evaluate(
            (APPEND,), (PREPEND,), selection, big_initial, database, separable_stats,
            push_into_initial=False,
        )
        assert separable_stats.derivations <= direct_stats.derivations

    def test_statistics_phases_recorded(self, diamond_db, initial):
        statistics = EvaluationStatistics()
        separable_evaluate(
            (APPEND,), (PREPEND,), EqualitySelection(0, 0), initial, diamond_db, statistics
        )
        assert set(statistics.phases) == {"inner-closure", "outer-closure"}
