"""Documentation-drift gates.

Docs rot silently: a knob lands on ``EvalConfig`` without a row in the
engine README's table, a file moves and a relative link keeps pointing
at the old path.  These tests make that rot a test failure instead —
every ``EvalConfig`` field and ``LiveEngine`` serving knob must appear
in the engine README's knob tables, and every repo-internal markdown
link (file and ``#anchor``) in the user-facing docs must resolve.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import inspect
import pathlib

import pytest

from repro.engine.parallel import EvalConfig
from repro.serve import LiveEngine

REPO = pathlib.Path(__file__).parent.parent

_SCRIPT = REPO / "benchmarks" / "check_markdown_links.py"
_spec = importlib.util.spec_from_file_location("check_markdown_links", _SCRIPT)
assert _spec is not None and _spec.loader is not None
check_markdown_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_markdown_links)

#: The user-facing markdown set the CI lint job link-checks.
DOC_FILES = (
    REPO / "README.md",
    REPO / "docs" / "architecture.md",
    REPO / "docs" / "planner.md",
    REPO / "src" / "repro" / "engine" / "README.md",
)

ENGINE_README = (REPO / "src" / "repro" / "engine" / "README.md").read_text()


def knob_column(text: str) -> set[str]:
    """Every backticked name in the first column of markdown tables."""
    knobs = set()
    for line in text.splitlines():
        if line.startswith("| `") and line.count("|") >= 3:
            cell = line.split("|")[1].strip()
            knobs.add(cell.strip("`"))
    return knobs


class TestKnobTables:
    def test_every_evalconfig_field_is_documented(self):
        documented = knob_column(ENGINE_README)
        fields = {field.name for field in dataclasses.fields(EvalConfig)}
        missing = fields - documented
        assert not missing, (
            f"EvalConfig fields missing from the engine README knob "
            f"table: {sorted(missing)}"
        )

    def test_every_serving_knob_is_documented(self):
        documented = knob_column(ENGINE_README)
        signature = inspect.signature(LiveEngine.__init__)
        knobs = {name for name, parameter in signature.parameters.items()
                 if parameter.kind is inspect.Parameter.KEYWORD_ONLY}
        missing = knobs - documented
        assert not missing, (
            f"LiveEngine serving knobs missing from the engine README: "
            f"{sorted(missing)}"
        )

    def test_planner_modes_named_in_readme(self):
        for token in ("greedy", "costed", "adaptive", "replan_ratio"):
            assert token in ENGINE_README


class TestMarkdownLinks:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_doc_exists(self, path):
        assert path.exists()

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_no_dead_links(self, path):
        problems = check_markdown_links.check_file(path)
        assert not problems, problems

    def test_checker_catches_dead_file_link(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[gone](missing.md)\n")
        assert check_markdown_links.check_file(page)

    def test_checker_catches_dead_anchor(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# Only Heading\n[x](#other-heading)\n")
        problems = check_markdown_links.check_file(page)
        assert problems
        page.write_text("# Only Heading\n[x](#only-heading)\n")
        assert not check_markdown_links.check_file(page)

    def test_checker_ignores_code_fences_and_urls(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](https://example.com/none)\n"
            "```\n[fake](dead.md)\n```\n"
        )
        assert not check_markdown_links.check_file(page)

    def test_slugging_matches_github_rules(self):
        slug = check_markdown_links.github_slug
        assert slug("Caches and their invalidation rules") == \
            "caches-and-their-invalidation-rules"
        assert slug("The layer above: queries and the `solve()` front door") \
            == "the-layer-above-queries-and-the-solve-front-door"


class TestArchitectureDoc:
    def test_cross_links_all_layers(self):
        text = (REPO / "docs" / "architecture.md").read_text()
        for package in ("datalog", "storage", "planner", "engine", "query",
                        "ivm", "serve", "durability"):
            assert f"src/repro/{package}" in text, package

    def test_planner_doc_has_shootout_and_formulas(self):
        text = (REPO / "docs" / "planner.md").read_text()
        assert "skewed_filter" in text and "hub_drift" in text
        assert "matches per probe" in text
        assert "replan_ratio" in text

    def test_readme_points_at_architecture(self):
        assert "docs/architecture.md" in (REPO / "README.md").read_text()
