"""Durability tests: WAL, checkpoints, crash-injection recovery parity.

The recovery contract under test: after *any* planned crash
(:class:`~repro.engine.faults.CrashPlan`), re-opening the database
directory yields a state bit-identical — closure rows, Theorem-3.1
counters, base relations — to an uncrashed twin that committed only
the durable prefix, with every WAL record accounted for in the
:class:`~repro.durability.RecoveryReport`.
"""

from __future__ import annotations

import asyncio
import atexit
import os
import struct
from array import array

import pytest

from repro import (
    Checkpoint,
    Database,
    DurableCoordinator,
    DurableLog,
    EvalConfig,
    LiveEngine,
    RecoveryReport,
    Relation,
    StorageError,
)
from repro.durability.checkpoint import write_checkpoint
from repro.durability.store import DurableStore
from repro.engine.faults import CrashEvent, CrashPlan, SimulatedCrash
from repro.ivm.maintain import MaterializedProgram

TC = (
    "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
    "path(X, Y) :- edge(X, Y)."
)

EDGES = [(1, 2), (2, 3), (3, 4)]

#: A deterministic mixed workload: every batch changes something.
BATCHES = [
    ({"edge": [(4, 5)]}, {}),
    ({"edge": [(5, 6), (6, 1)]}, {}),
    ({}, {"edge": [(2, 3)]}),
    ({"edge": [(2, 3), (7, 8)]}, {"edge": [(6, 1)]}),
    ({}, {"edge": [(7, 8), (1, 2)]}),
    ({"edge": [(1, 2), (8, 9)]}, {}),
]


def tc_db():
    return Database.of(Relation.of("edge", 2, list(EDGES)))


def fingerprint(state) -> tuple:
    """Everything recovery must reproduce bit-identically."""
    return (
        state.generation,
        {name: relation.rows
         for name, relation in state.working.relations.items()},
        {predicate.name: closure.closure.rows
         for predicate, closure in state.closures.items()},
        {predicate.name: closure.statistics().as_dict()
         for predicate, closure in state.closures.items()},
        {predicate.name: (dict(closure.q), dict(closure.supp))
         for predicate, closure in state.closures.items()},
    )


def twin_at(generation: int):
    """An uncrashed engine that committed only the first *generation* batches."""
    twin = MaterializedProgram(TC, tc_db())
    for inserts, deletes in BATCHES[:generation]:
        twin.apply(inserts=inserts, deletes=deletes)
    return twin


# ----------------------------------------------------------------------
# The write-ahead log
# ----------------------------------------------------------------------


class TestDurableLog:
    def test_append_and_reopen_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = DurableLog(path)
        log.append(1, {"a": [1, 2]})
        log.append(2, ("rows", frozenset({(1, 2)})))
        log.close()
        reopened = DurableLog(path)
        assert [record.generation for record in reopened.records] == [1, 2]
        assert reopened.records[0].payload == {"a": [1, 2]}
        assert reopened.records[1].payload == ("rows", frozenset({(1, 2)}))
        assert reopened.scan.truncated_records == 0
        assert reopened.last_generation == 2
        reopened.close()

    def test_torn_tail_is_truncated_and_counted(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = DurableLog(path)
        log.append(1, "first")
        log.append(2, "second")
        log.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as file:
            file.truncate(size - 3)  # tear the last record
        reopened = DurableLog(path)
        assert [record.payload for record in reopened.records] == ["first"]
        assert reopened.scan.torn_tail
        assert reopened.scan.truncated_records == 1
        assert reopened.scan.truncated_bytes > 0
        # After truncation the file ends at the valid prefix and a
        # fresh append continues the sequence.
        reopened.append(2, "second again")
        reopened.close()
        final = DurableLog(path)
        assert [record.payload for record in final.records] == [
            "first", "second again"]
        assert final.scan.truncated_records == 0
        final.close()

    def test_corrupt_record_is_truncated(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = DurableLog(path)
        log.append(1, "first")
        offset = os.path.getsize(path)
        log.append(2, "second")
        log.close()
        with open(path, "r+b") as file:
            file.seek(offset + 4)  # the second record's stored CRC
            file.write(b"\xde\xad\xbe\xef")
        reopened = DurableLog(path)
        assert [record.payload for record in reopened.records] == ["first"]
        assert reopened.scan.corrupt_tail
        assert reopened.scan.truncated_records == 1
        assert reopened.health.wal_records_truncated == 1
        reopened.close()

    def test_non_monotonic_generations_are_real_corruption(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = DurableLog(path)
        log.append(5, "x")
        with pytest.raises(StorageError, match="does not advance"):
            log.append(5, "y")
        log.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as file:
            file.write(b"NOTAWAL!" + b"\0" * 32)
        with pytest.raises(StorageError, match="bad magic"):
            DurableLog(path)

    def test_sync_policy_validated(self, tmp_path):
        with pytest.raises(StorageError, match="sync policy"):
            DurableLog(str(tmp_path / "wal.log"), sync="sometimes")

    def test_batch_sync_flushes_on_close(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = DurableLog(path, sync="batch", sync_every=100)
        for generation in range(1, 6):
            log.append(generation, generation)
        log.close()
        reopened = DurableLog(path)
        assert len(reopened.records) == 5
        reopened.close()


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


def checkpointed_state(tmp_path):
    state = MaterializedProgram(TC, tc_db())
    state.apply(inserts={"edge": [(4, 5)]})
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(
        path, generation=state.generation, program=state.program,
        database=state.working,
        states={predicate.name: closure.state()
                for predicate, closure in state.closures.items()},
    )
    return state, path


class TestCheckpoint:
    def test_roundtrip_database_and_states(self, tmp_path):
        state, path = checkpointed_state(tmp_path)
        checkpoint = Checkpoint(path)
        assert checkpoint.generation == 1
        assert str(checkpoint.program) == str(state.program)
        database = checkpoint.database()
        assert database.relations["edge"].rows == \
            state.working.relations["edge"].rows
        restored = checkpoint.states()["path"]
        maintained = next(iter(state.closures.values()))
        assert restored.rows == maintained.closure.rows
        assert dict(restored.q) == maintained.q
        assert dict(restored.supp) == maintained.supp
        checkpoint.close()
        checkpoint.close()  # idempotent

    def test_open_is_zero_copy_and_primed(self, tmp_path):
        state, path = checkpointed_state(tmp_path)
        checkpoint = Checkpoint(path)
        database = checkpoint.database()
        interned = database.interned_relation("edge", 2)
        # The columns are memoryview windows into the mapped file, not
        # re-interned arrays: opening never copies column data.
        assert all(isinstance(column, memoryview)
                   for column in interned.columns)
        # And the domain reproduces the checkpointed id assignment, so
        # the decoded rows match the stored relation exactly.
        domain = database.domain()
        decoded = {
            tuple(domain.value_of(column[j]) for column in interned.columns)
            for j in range(interned.length)
        }
        assert decoded == state.working.relations["edge"].rows
        # First mutation promotes copy-on-write.
        interned.extend_with([(99, 100)], domain)
        assert all(isinstance(column, array) for column in interned.columns)
        checkpoint.close()

    def test_meta_corruption_detected(self, tmp_path):
        _, path = checkpointed_state(tmp_path)
        with open(path, "r+b") as file:
            file.seek(40)  # inside the meta block
            file.write(b"\xff\xff")
        with pytest.raises(StorageError, match="checksum"):
            Checkpoint(path)

    def test_blob_corruption_detected(self, tmp_path):
        _, path = checkpointed_state(tmp_path)
        with open(path, "r+b") as file:
            blob_base = struct.unpack(
                "<Q", open(path, "rb").read(24)[16:24])[0]
            file.seek(blob_base + 1)
            file.write(b"\x7f")
        with pytest.raises(StorageError, match="blob region"):
            Checkpoint(path)

    def test_missing_file_is_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="Cannot open"):
            Checkpoint(str(tmp_path / "nope.ckpt"))

    def test_write_is_atomic(self, tmp_path):
        _, path = checkpointed_state(tmp_path)
        assert not os.path.exists(path + ".tmp")


# ----------------------------------------------------------------------
# The store and coordinator
# ----------------------------------------------------------------------


class TestDurableStore:
    def test_concurrent_open_fails_fast_with_storage_error(self, tmp_path):
        path = str(tmp_path / "db")
        first = DurableCoordinator.open(path, TC, tc_db())
        # A second open of a locked directory must fail cleanly (no
        # deadlock, no partial state) — same process or another.
        with pytest.raises(StorageError, match="locked by another"):
            DurableStore(path)
        first.close()
        # After close the directory opens normally again.
        second = DurableCoordinator.open(path)
        assert second.recovery.clean
        second.close()

    def test_manifest_pointing_at_missing_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        coordinator = DurableCoordinator.open(path, TC, tc_db())
        checkpoint_name = coordinator.store.manifest["checkpoint"]
        coordinator.close()
        os.unlink(os.path.join(path, checkpoint_name))
        with pytest.raises(StorageError, match="missing checkpoint"):
            DurableCoordinator.open(path)

    def test_fresh_directory_requires_program_and_database(self, tmp_path):
        with pytest.raises(StorageError, match="no database yet"):
            DurableCoordinator.open(str(tmp_path / "empty"))

    def test_clean_close_leaves_no_stale_files(self, tmp_path):
        path = str(tmp_path / "db")
        coordinator = DurableCoordinator.open(path, TC, tc_db())
        coordinator.apply(inserts={"edge": [(4, 5)]})
        coordinator.close()
        coordinator.close()  # idempotent
        entries = sorted(os.listdir(path))
        assert entries == ["LOCK", "MANIFEST", "checkpoint-1.ckpt", "wal.log"]
        # atexit backstop was unregistered by close (a second call must
        # be a no-op even if Python invoked it at exit).
        coordinator._atexit_close()

    def test_periodic_checkpoint_folds_wal_away(self, tmp_path):
        path = str(tmp_path / "db")
        coordinator = DurableCoordinator.open(path, TC, tc_db(),
                                              checkpoint_every=2)
        for inserts, deletes in BATCHES[:4]:
            coordinator.apply(inserts=inserts, deletes=deletes)
        # Two periodic checkpoints ran (after commits 2 and 4) plus the
        # creation checkpoint; the WAL is empty at each boundary.
        assert coordinator.health.checkpoints_written == 3
        assert coordinator.store.manifest["generation"] == 4
        assert coordinator.store.wal.records == []
        coordinator.close()
        reopened = DurableCoordinator.open(path)
        assert reopened.recovery.clean
        assert fingerprint(reopened.state) == fingerprint(twin_at(4))
        reopened.close()

    def test_noop_batches_are_not_logged(self, tmp_path):
        path = str(tmp_path / "db")
        coordinator = DurableCoordinator.open(path, TC, tc_db())
        change = coordinator.apply(inserts={"edge": [(1, 2)]})  # already there
        assert not change
        assert coordinator.health.wal_records_appended == 0
        assert coordinator.state.generation == 0
        coordinator.close()


# ----------------------------------------------------------------------
# Crash-injection recovery parity
# ----------------------------------------------------------------------


def run_until_crash(path, plan, checkpoint_every=0, sync="always"):
    """Drive the workload into a planned crash; leave the dir crashed."""
    coordinator = None
    try:
        coordinator = DurableCoordinator.open(
            path, TC, tc_db(), checkpoint_every=checkpoint_every,
            sync=sync, crash_plan=plan,
        )
        for inserts, deletes in BATCHES:
            coordinator.apply(inserts=inserts, deletes=deletes)
        coordinator.close()
        return False  # plan never fired
    except SimulatedCrash:
        if coordinator is not None:
            coordinator.abandon()
        return True


def assert_recovery_parity(path):
    """Reopen and compare against the uncrashed twin of the durable prefix."""
    recovered = DurableCoordinator.open(path, TC, tc_db())
    try:
        report = recovered.recovery
        generation = report.recovered_generation
        assert fingerprint(recovered.state) == fingerprint(twin_at(generation))
        # Accounting: every record the scan saw is replayed, skipped or
        # truncated; the replayed count carries from checkpoint to tip.
        assert report.records_replayed == \
            generation - report.checkpoint_generation
        assert report.records_truncated in (0, 1)
        return report
    finally:
        recovered.close()


class TestCrashRecovery:
    @pytest.mark.parametrize("kind", ["kill", "torn", "corrupt"])
    @pytest.mark.parametrize("after", [0, 2, 4])
    def test_wal_crashes_recover(self, tmp_path, kind, after):
        path = str(tmp_path / "db")
        plan = CrashPlan([CrashEvent("wal_append", kind, after=after)])
        assert run_until_crash(path, plan)
        report = assert_recovery_parity(path)
        assert report.recovered_generation == after
        if kind in ("torn", "corrupt"):
            assert report.records_truncated == 1
            assert report.torn_tail == (kind == "torn")
            assert report.corrupt_tail == (kind == "corrupt")
        else:
            assert report.records_truncated == 0

    def test_crash_before_wal_fsync(self, tmp_path):
        path = str(tmp_path / "db")
        plan = CrashPlan([CrashEvent("wal_sync", "kill", after=1)])
        assert run_until_crash(path, plan)
        assert_recovery_parity(path)

    @pytest.mark.parametrize("point", ["checkpoint_write", "manifest_swap",
                                       "wal_reset"])
    def test_checkpoint_protocol_crashes_recover(self, tmp_path, point):
        path = str(tmp_path / "db")
        # after=1 skips the creation checkpoint and crashes the first
        # periodic one (at generation 2).
        plan = CrashPlan([CrashEvent(point, "kill", after=1)])
        assert run_until_crash(path, plan, checkpoint_every=2)
        report = assert_recovery_parity(path)
        assert report.recovered_generation == 2
        if point == "wal_reset":
            # Manifest swapped but the old WAL survived: its records
            # are stale and must be skipped, not replayed.
            assert report.checkpoint_generation == 2
            assert report.records_skipped == 2
        else:
            assert report.checkpoint_generation == 0

    def test_crash_during_creation_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        plan = CrashPlan([CrashEvent("checkpoint_write", "kill", after=0)])
        assert run_until_crash(path, plan)
        # No manifest was ever installed: the directory holds no
        # database, and create runs again from the inputs.
        report = assert_recovery_parity(path)
        assert report.recovered_generation == 0

    def test_batched_sync_crash_recovers_a_prefix(self, tmp_path):
        path = str(tmp_path / "db")
        plan = CrashPlan([CrashEvent("wal_append", "torn", after=3)])
        assert run_until_crash(path, plan, sync="batch")
        assert_recovery_parity(path)

    @pytest.mark.parametrize("seed", range(12))
    def test_seeded_crash_sweep(self, tmp_path, seed):
        """The fuzzer's schedule generator, pinned over a seed range."""
        path = str(tmp_path / "db")
        plan = CrashPlan.from_seed(seed)
        crashed = run_until_crash(path, plan, checkpoint_every=2)
        report = assert_recovery_parity(path)
        if crashed:
            assert plan.exhausted()
        else:
            assert report.clean

    def test_double_crash_then_recover(self, tmp_path):
        """A crash during the recovery run's own commits also recovers."""
        path = str(tmp_path / "db")
        assert run_until_crash(
            path, CrashPlan([CrashEvent("wal_append", "torn", after=2)]))
        # Second run, itself crashing later.
        second = DurableCoordinator.open(
            path, crash_plan=CrashPlan(
                [CrashEvent("wal_append", "corrupt", after=1)]))
        assert second.recovery.recovered_generation == 2
        try:
            for inserts, deletes in BATCHES[2:]:
                second.apply(inserts=inserts, deletes=deletes)
            raise AssertionError("planned crash did not fire")
        except SimulatedCrash:
            second.abandon()
        report = assert_recovery_parity(path)
        assert report.recovered_generation == 3


# ----------------------------------------------------------------------
# RecoveryReport surface
# ----------------------------------------------------------------------


class TestRecoveryReport:
    def test_as_dict_accounts_for_every_record(self):
        report = RecoveryReport(checkpoint_generation=2,
                                recovered_generation=5,
                                records_replayed=3, records_skipped=2,
                                records_truncated=1, bytes_truncated=17,
                                torn_tail=True)
        flat = report.as_dict()
        assert flat["records_replayed"] + flat["records_skipped"] + \
            flat["records_truncated"] == 6
        assert flat["clean"] is False

    def test_clean_report(self):
        assert RecoveryReport().clean
        assert not RecoveryReport(records_skipped=1).clean
        assert not RecoveryReport(stale_files_removed=["x.tmp"]).clean


# ----------------------------------------------------------------------
# Config surface
# ----------------------------------------------------------------------


class TestDurableConfig:
    def test_spec_token_implies_maintain(self):
        config = EvalConfig.from_spec("interned-durable")
        assert config.durable and config.maintain and config.intern
        assert config.spec() == "interned-serial-durable"

    def test_spec_roundtrip(self):
        spec = "batch-threads-durable"
        assert EvalConfig.from_spec(spec).spec() == spec

    def test_durable_requires_maintain(self):
        with pytest.raises(ValueError, match="requires maintain"):
            EvalConfig(durable=True)
        with pytest.raises(ValueError, match="maintain given twice"):
            EvalConfig.from_spec("durable", maintain=False)

    def test_unknown_token_message_mentions_durable(self):
        with pytest.raises(ValueError, match="durable"):
            EvalConfig.from_spec("durible")

    def test_durable_engine_requires_path(self):
        with pytest.raises(ValueError, match="requires a storage path"):
            LiveEngine(TC, tc_db(), config="interned-durable")


# ----------------------------------------------------------------------
# The durable LiveEngine (async serving on top of the coordinator)
# ----------------------------------------------------------------------


def run(coroutine):
    return asyncio.run(coroutine)


class TestDurableServing:
    def test_open_close_reopen(self, tmp_path):
        path = str(tmp_path / "db")

        async def scenario():
            engine = await LiveEngine(TC, tc_db(), path=path).start()
            assert engine.durable and engine.recovery.clean
            async with engine.transaction() as session:
                session.insert("edge", (4, 5))
            rows = engine.ask("path(1, X)?").rows
            stats = engine.snapshot().statistics("path").as_dict()
            await engine.close()
            await engine.close()  # idempotent
            reopened = await LiveEngine.open(path)
            assert reopened.recovery.clean
            assert reopened.generation == 1
            assert reopened.ask("path(1, X)?").rows == rows
            assert reopened.snapshot().statistics("path").as_dict() == stats
            await reopened.close()

        run(scenario())

    def test_commits_survive_a_crash_without_close(self, tmp_path):
        path = str(tmp_path / "db")

        async def write_and_crash():
            engine = await LiveEngine(TC, tc_db(), path=path).start()
            async with engine.transaction() as session:
                session.insert("edge", (4, 5))
            rows = engine.ask("path(1, X)?").rows
            # Simulated process death: no close(), no checkpoint.
            engine._state.abandon()
            engine._closed = True
            atexit.unregister(engine._atexit_close)
            return rows

        async def recover(rows):
            engine = await LiveEngine.open(path)
            assert not engine.recovery.clean
            assert engine.recovery.records_replayed == 1
            assert engine.health.wal_records_replayed == 1
            assert engine.ask("path(1, X)?").rows == rows
            await engine.close()

        rows = run(write_and_crash())
        run(recover(rows))

    def test_checkpoint_api_and_mmap_reopen(self, tmp_path):
        path = str(tmp_path / "db")

        async def scenario():
            engine = await LiveEngine(TC, tc_db(), path=path).start()
            async with engine.transaction() as session:
                session.insert("edge", (4, 5))
            await engine.checkpoint()
            assert engine.health.checkpoints_written == 2
            await engine.close()
            reopened = await LiveEngine.open(path)
            # Recovery replayed nothing: the checkpoint carried it all,
            # and the working database's interned columns came straight
            # off the map (serving snapshots are cache-free copies, so
            # the zero-copy guarantee is observed on the working set).
            assert reopened.recovery.records_replayed == 0
            interned = reopened._state.state.working.interned_relation(
                "edge", 2)
            assert all(isinstance(column, memoryview)
                       for column in interned.columns)
            assert reopened.ask("path(1, X)?").rows
            await reopened.close()

        run(scenario())
