"""Tests for the experiment harness and every experiment module.

These are small-configuration runs: they check that each experiment
produces its table, that the PASS/FAIL notes report PASS, and that the
quantitative claims (never more duplicates, answers agree, syntactic test
faster) hold on the tested configurations.
"""

from repro.experiments.complexity import run_test_scaling
from repro.experiments.duplicates import run_duplicate_comparison
from repro.experiments.examples import run_example_checks
from repro.experiments.figures import run_all_figures
from repro.experiments.harness import ExperimentResult, format_table
from repro.experiments.identities import run_identity_checks
from repro.experiments.planner_experiment import run_planner_comparison
from repro.experiments.redundancy import run_factorized_evaluation, run_redundant_buys
from repro.experiments.separable import run_selection_benefit, run_separable_implies_commutes


class TestHarness:
    def test_result_accumulates_rows_and_notes(self):
        result = ExperimentResult("X", "demo")
        result.add_row(a=1, b=2)
        result.add_row(a=3, b=4)
        result.add_note("done")
        assert result.column("a") == [1, 3]
        assert "done" in result.render()

    def test_format_table_alignment(self):
        table = format_table([{"col": 1, "other": "ab"}, {"col": 222, "other": "c"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_handles_missing_keys_and_floats(self):
        table = format_table([{"a": 1.23456}, {"b": "x"}])
        assert "1.235" in table


class TestFigureExperiments:
    def test_all_figures_run(self):
        results = run_all_figures()
        assert len(results) == 8
        assert all(result.rows or result.notes for result in results)

    def test_figure_1_matches_paper(self):
        figure = run_all_figures()[0]
        assert any("matches the paper's statement: True" in note for note in figure.notes)

    def test_figure_2_has_three_bridges(self):
        figure = next(result for result in run_all_figures() if result.experiment_id == "FIG-2")
        assert len(figure.rows) == 3


class TestExampleChecks:
    def test_every_claim_matches(self):
        result = run_example_checks()
        assert result.rows
        assert all(row["expected"] == row["measured"] for row in result.rows)


class TestQuantitativeExperiments:
    def test_duplicates_theorem_3_1(self):
        result = run_duplicate_comparison(shapes=("dag",), sizes=(16,))
        for row in result.rows:
            assert row["answers_equal"]
            assert row["decomposed_duplicates"] <= row["direct_duplicates"]

    def test_selection_benefit(self):
        result = run_selection_benefit(sizes=(8,))
        for row in result.rows:
            assert row["answers_equal"]
            assert row["separable_derivations"] <= row["direct_derivations"]

    def test_separable_implies_commutes(self):
        result = run_separable_implies_commutes(pairs=5)
        assert any("0 violations" in note for note in result.notes)

    def test_complexity_scaling(self):
        result = run_test_scaling(arities=(2, 3), pairs_per_size=2)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["syntactic_seconds"] >= 0

    def test_redundant_buys(self):
        result = run_redundant_buys(sizes=(10,))
        for row in result.rows:
            assert row["answers_equal"]
            assert row["aware_c_bound"] <= row["direct_c_applications"] or row["size"] <= row["aware_c_bound"]

    def test_factorized_evaluation(self):
        result = run_factorized_evaluation(sizes=(4,))
        assert all(row["answers_equal"] for row in result.rows)

    def test_identities(self):
        result = run_identity_checks(sizes=(6,))
        for row in result.rows:
            assert row["formula_3_1"] and row["lassez_maher"] and row["dong"]

    def test_planner_comparison(self):
        result = run_planner_comparison(size=12)
        strategies = {row["case"]: row["strategy"] for row in result.rows}
        assert strategies["two-sided transitive closure"] == "decomposed"
        assert strategies["non-commuting control"] == "direct"
        assert all(row["answers_equal"] for row in result.rows)
