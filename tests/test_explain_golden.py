"""Golden-text tests for plan explanations across planner modes.

Two guarantees are pinned here: greedy plans print exactly as they did
before the planner landed (no annotation creep into the default path),
and cost-planned/forced plans carry the ``planner:`` annotation so a
captured explain always says where its order came from.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.datalog.parser import parse_rule
from repro.engine.parallel import EvalConfig
from repro.engine.plan import clear_plan_cache, compile_rule
from repro.planner import explain_program, planner_catalog
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.workloads.rulegen import skewed_filter_program


@pytest.fixture(autouse=True)
def fresh_caches():
    planner_catalog().clear()
    clear_plan_cache()
    yield
    planner_catalog().clear()
    clear_plan_cache()


TC_RULE = parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y).")


def tc_database():
    return Database.of(Relation.of("edge", 2, [(i, i + 1) for i in range(5)]))


def golden(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


class TestCompiledRuleExplain:
    def test_greedy_rows_unannotated(self):
        plan = compile_rule(TC_RULE, tc_database())
        assert plan.explain(executor="rows") == golden("""
            scan path(Z, Y) key=()
            scan edge(X, Z) key=(1,)
        """)

    def test_greedy_batch_unannotated(self):
        plan = compile_rule(TC_RULE, tc_database())
        assert plan.explain(executor="batch") == golden("""
            batch-scan path(Z, Y) key=() bind=['s0<-0', 's1<-1']
            batch-probe edge(X, Z) key=(1,) carry=[1] bind=['s2<-0'] fused-emit path(X, Y) specialized=head2
            collapse -> (row, count) pairs
        """)

    def test_greedy_interned_unannotated(self):
        plan = compile_rule(TC_RULE, tc_database())
        assert plan.explain(executor="interned") == golden("""
            int-scan path(Z, Y) key=() cols=['s0<-0', 's1<-1'] (array'q')
            int-probe edge(X, Z) key=(1,) payload=(0,) carry=[1] fused-pack path(X, Y) (K-base packed ints)
            collapse packed ints -> (row, count) pairs; decode via Domain
            packed-closure specialization: grouped-binary (delta grouped by join key; selected on every backend)
        """)

    def test_forced_order_is_annotated_on_every_executor(self):
        plan = compile_rule(TC_RULE, tc_database(), order=(1, 0))
        for executor in ("rows", "batch", "interned"):
            lines = plan.explain(executor=executor).splitlines()
            assert lines[-1] == "planner: costed order=(1, 0)", executor

    def test_forced_same_as_greedy_still_annotated(self):
        greedy = compile_rule(TC_RULE, tc_database())
        forced = compile_rule(TC_RULE, tc_database(), order=greedy.order)
        assert forced.forced
        assert "planner: costed" in forced.explain(executor="rows")
        assert "planner:" not in greedy.explain(executor="rows")


class TestExplainProgram:
    def test_greedy_golden(self):
        rules, database, initial = skewed_filter_program()
        text = explain_program(rules, database, EvalConfig(planner="greedy"),
                               initial=initial)
        assert text == golden("""
            planner: greedy
            rule 0: p(X, Y) :- p(X, Z), blow(Z, Y), sel(Z, Y).
              order: (0, 1, 2) [greedy]
              scan p(X, Z) key=()
              scan blow(Z, Y) key=(0,)
              scan sel(Z, Y) key=(0, 1)
        """)

    def test_costed_golden(self):
        rules, database, initial = skewed_filter_program()
        text = explain_program(rules, database, EvalConfig(planner="costed"),
                               initial=initial)
        assert text == golden("""
            planner: costed
            rule 0: p(X, Y) :- p(X, Z), blow(Z, Y), sel(Z, Y).
              order: (0, 2, 1) [cold] est_cost=5.0 est_rows=0.0
              scan p(X, Z) key=()
              scan sel(Z, Y) key=(0,)
              scan blow(Z, Y) key=(0, 1)
              planner: costed order=(0, 2, 1)
        """)

    def test_adaptive_golden(self):
        rules, database, initial = skewed_filter_program()
        text = explain_program(rules, database, EvalConfig(planner="adaptive"),
                               initial=initial)
        assert text == golden("""
            planner: adaptive
            rule 0: p(X, Y) :- p(X, Z), blow(Z, Y), sel(Z, Y).
              order: (0, 2, 1) [cold] est_cost=5.0 est_rows=0.0
              scan p(X, Z) key=()
              scan sel(Z, Y) key=(0,)
              scan blow(Z, Y) key=(0, 1)
              planner: costed order=(0, 2, 1)
            adaptive: re-cost when delta/total drifts 4.0x between iterations; swaps apply at iteration boundaries
        """)

    def test_batch_executor_pipeline_shown(self):
        rules, database, initial = skewed_filter_program()
        text = explain_program(rules, database, EvalConfig(planner="costed"),
                               executor="batch", initial=initial)
        assert "batch-scan p(X, Z)" in text
        assert "planner: costed order=(0, 2, 1)" in text

    def test_default_config_is_greedy(self):
        rules, database, initial = skewed_filter_program()
        text = explain_program(rules, database, initial=initial)
        assert text.startswith("planner: greedy")
