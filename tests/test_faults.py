"""Chaos parity: every deterministic fault schedule changes *nothing*.

The supervised evaluator's contract is that fault tolerance is
invisible in the results: under worker kills, task errors, timeouts,
lost or corrupted shared-memory segments, merge-point failures and
forced backend degradations, evaluation completes with the result
relation, the Theorem-3.1 derivation/duplicate accounting and the
low-level join counters bit-identical to a fault-free serial run — only
the :class:`~repro.engine.statistics.HealthReport` shows that anything
happened.  This suite drives planned :class:`FaultPlan` schedules
through {threads, processes} × {semi-naive, naive} and asserts exactly
that, plus 3-run byte-determinism under a fixed schedule, the
``on_failure="raise"`` and ``deadline`` escapes, and the unit behaviour
of the plan/report types themselves.
"""

from __future__ import annotations

import pickle

import pytest

from repro.datalog.parser import parse_rule
from repro.engine.faults import FaultEvent, FaultPlan, InjectedFault
from repro.engine.naive import naive_closure
from repro.engine.parallel import EvalConfig
from repro.engine.seminaive import seminaive_closure
from repro.engine.statistics import EvaluationStatistics, HealthReport
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.relation import Relation

PARALLEL_BACKENDS = ["threads", "processes"]


def tc_workload():
    """A 10-iteration transitive closure — room for mid-closure faults."""
    rules = (parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."),)
    edges = [(i, i + 1) for i in range(10)] + [(0, 5), (3, 8), (2, 7)]
    database = Database.of(Relation.of("edge", 2, edges))
    initial = Relation.of("path", 2, [(n, n) for n in range(11)])
    return rules, database, initial


def chaos_config(backend: str, plan: FaultPlan | None = None,
                 **kwargs) -> EvalConfig:
    """An interned parallel config that actually partitions on 1 CPU."""
    base = dict(executor="batch", intern=True, backend=backend,
                max_workers=2, partitions=3, min_partition_rows=2,
                retry_backoff=0.0, fault_plan=plan)
    base.update(kwargs)
    return EvalConfig(**base)


def full_signature(statistics: EvaluationStatistics):
    return (
        statistics.derivations,
        statistics.duplicates,
        statistics.iterations,
        statistics.rule_applications,
        statistics.result_size,
        statistics.joins.rows_probed,
        statistics.joins.bindings_extended,
        statistics.joins.tuples_emitted,
    )


def run(closure, config) -> tuple[Relation, EvaluationStatistics]:
    rules, database, initial = tc_workload()
    statistics = EvaluationStatistics()
    relation = closure(rules, initial, database, statistics, config=config)
    return relation, statistics


# Schedules are built fresh per run (plans are mutable, single-use).
# ``extra`` carries config knobs a schedule needs (e.g. the timeout).
SCHEDULES: dict[str, dict] = {
    "task-error": dict(
        events=lambda: [FaultEvent("task", "error", iteration=1,
                                   task_index=0)],
        extra={},
    ),
    "task-timeout": dict(
        events=lambda: [FaultEvent("task", "delay", iteration=1,
                                   task_index=0, seconds=0.5)],
        extra={"task_timeout": 0.05},
    ),
    "worker-kill": dict(
        events=lambda: [FaultEvent("task", "kill", iteration=2,
                                   task_index=0)],
        extra={},
    ),
    "merge-error": dict(
        events=lambda: [FaultEvent("merge", "error", iteration=2)],
        extra={},
    ),
    "forced-degrade": dict(
        events=lambda: [FaultEvent("task", "error", count=500)],
        extra={},
    ),
    # Segment schedules only make sense where segments exist.
    "segment-leak": dict(
        events=lambda: [FaultEvent("segment", "leak", iteration=2)],
        extra={},
        backends=("processes",),
    ),
    "segment-corrupt": dict(
        events=lambda: [FaultEvent("segment", "corrupt", iteration=2)],
        extra={},
        backends=("processes",),
    ),
}


def schedule_cases():
    for name, spec in SCHEDULES.items():
        for backend in spec.get("backends", PARALLEL_BACKENDS):
            yield pytest.param(name, backend, id=f"{name}-{backend}")


def build_plan(name: str) -> FaultPlan:
    return FaultPlan(SCHEDULES[name]["events"]())


# ----------------------------------------------------------------------
# Chaos parity: faulty runs are bit-identical to fault-free serial
# ----------------------------------------------------------------------


class TestChaosParity:
    @pytest.mark.parametrize("schedule,backend", schedule_cases())
    def test_seminaive_parity_under_faults(self, schedule, backend):
        reference, reference_stats = run(seminaive_closure, None)
        plan = build_plan(schedule)
        relation, statistics = run(
            seminaive_closure,
            chaos_config(backend, plan, **SCHEDULES[schedule]["extra"]),
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)
        assert plan.fired, "the schedule never fired — the test is vacuous"
        assert statistics.health.faults_injected == len(plan.fired)
        assert statistics.health.recovery_actions() >= 1

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("schedule", ["task-error", "worker-kill"])
    def test_naive_parity_under_faults(self, schedule, backend):
        reference, reference_stats = run(naive_closure, None)
        plan = build_plan(schedule)
        relation, statistics = run(
            naive_closure,
            chaos_config(backend, plan, **SCHEDULES[schedule]["extra"]),
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)
        assert plan.fired

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_rows_executor_parity_under_faults(self, backend):
        """The non-packed (value-space) parallel path is supervised too."""
        reference, reference_stats = run(seminaive_closure, None)
        plan = FaultPlan([FaultEvent("task", "error", iteration=1,
                                     task_index=0),
                          FaultEvent("merge", "error", iteration=2)])
        config = EvalConfig(backend=backend, max_workers=2, partitions=3,
                            min_partition_rows=2, retry_backoff=0.0,
                            fault_plan=plan)
        relation, statistics = run(seminaive_closure, config)
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)
        assert plan.fired

    def test_three_runs_byte_identical_under_fixed_schedule(self):
        outcomes = set()
        for _ in range(3):
            plan = FaultPlan([
                FaultEvent("task", "kill", iteration=2, task_index=0),
                FaultEvent("task", "error", iteration=3, task_index=0),
                FaultEvent("merge", "error", iteration=4),
            ])
            relation, statistics = run(
                seminaive_closure, chaos_config("processes", plan))
            outcomes.add((pickle.dumps(sorted(relation.rows)),
                          full_signature(statistics),
                          tuple(plan.fired)))
        assert len(outcomes) == 1

    def test_seeded_plans_sweep_clean(self):
        """A handful of ``from_seed`` schedules, all bit-identical."""
        reference, reference_stats = run(seminaive_closure, None)
        for seed in range(3):
            plan = FaultPlan.from_seed(seed)
            relation, statistics = run(
                seminaive_closure, chaos_config("threads", plan))
            assert relation.rows == reference.rows
            assert (full_signature(statistics)
                    == full_signature(reference_stats)), f"seed {seed}"


# ----------------------------------------------------------------------
# Recovery actions land on the health report
# ----------------------------------------------------------------------


class TestHealthAccounting:
    def test_worker_kill_records_pool_rebuild(self):
        plan = build_plan("worker-kill")
        _, statistics = run(seminaive_closure,
                            chaos_config("processes", plan))
        health = statistics.health
        assert health.pool_rebuilds >= 1
        assert health.iteration_retries >= 1
        assert health.segments_recycled >= 1
        assert health.backend == "processes"
        assert not health.degradations

    def test_task_error_records_task_retry(self):
        plan = build_plan("task-error")
        _, statistics = run(seminaive_closure, chaos_config("threads", plan))
        assert statistics.health.task_retries >= 1

    def test_timeout_records_task_timeout(self):
        plan = build_plan("task-timeout")
        _, statistics = run(
            seminaive_closure,
            chaos_config("threads", plan, task_timeout=0.05))
        assert statistics.health.task_timeouts >= 1

    def test_forced_degradation_walks_the_ladder(self):
        plan = build_plan("forced-degrade")
        reference, reference_stats = run(seminaive_closure, None)
        relation, statistics = run(seminaive_closure,
                                   chaos_config("processes", plan))
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)
        assert statistics.health.degradations == [
            "processes->threads", "threads->serial",
        ]
        assert statistics.health.backend == "serial"

    def test_clean_run_reports_nothing(self):
        _, statistics = run(seminaive_closure, chaos_config("threads"))
        health = statistics.health
        assert health.recovery_actions() == 0
        assert health.faults_injected == 0
        assert health.backend == "threads"


# ----------------------------------------------------------------------
# Policy escapes: on_failure="raise" and the deadline
# ----------------------------------------------------------------------


class TestPolicyEscapes:
    def test_on_failure_raise_surfaces_the_fault(self):
        plan = build_plan("forced-degrade")
        with pytest.raises(EvaluationError):
            run(seminaive_closure,
                chaos_config("threads", plan, on_failure="raise"))

    def test_zero_retries_with_raise_fails_fast(self):
        plan = build_plan("task-error")
        with pytest.raises(EvaluationError):
            run(seminaive_closure,
                chaos_config("threads", plan, max_retries=0,
                             on_failure="raise"))

    def test_deadline_aborts_evaluation(self):
        with pytest.raises(EvaluationError, match="deadline"):
            run(seminaive_closure, chaos_config("threads", deadline=1e-8))

    def test_deadline_applies_to_serial_too(self):
        with pytest.raises(EvaluationError, match="deadline"):
            run(seminaive_closure, EvalConfig(deadline=1e-8))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvalConfig(on_failure="panic")
        with pytest.raises(ValueError):
            EvalConfig(max_retries=-1)
        with pytest.raises(ValueError):
            EvalConfig(task_timeout=0)
        with pytest.raises(ValueError):
            EvalConfig(deadline=-1)
        with pytest.raises(ValueError):
            EvalConfig(retry_backoff=-0.1)


# ----------------------------------------------------------------------
# FaultPlan / FaultEvent / HealthReport units
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_draw_matches_point_iteration_and_task(self):
        plan = FaultPlan([FaultEvent("task", "error", iteration=2,
                                     task_index=1)])
        assert plan.draw("task", 1, 1) is None
        assert plan.draw("task", 2, 0) is None
        assert plan.draw("merge", 2, 1) is None
        assert plan.draw("task", 2, 1) == ("error", 0.2)
        # count=1: consumed.
        assert plan.draw("task", 2, 1) is None
        assert plan.exhausted()
        assert plan.fired == [("task", "error", 2, 1)]

    def test_wildcards_match_anything(self):
        plan = FaultPlan([FaultEvent("merge", "error", count=3)])
        assert plan.draw("merge", 1) is not None
        assert plan.draw("merge", 7) is not None
        assert not plan.exhausted()

    def test_reset_rearms(self):
        plan = FaultPlan([FaultEvent("task", "error")])
        assert plan.draw("task", 1, 0) is not None
        assert plan.exhausted()
        plan.reset()
        assert not plan.exhausted()
        assert plan.fired == []
        assert plan.draw("task", 5, 2) is not None

    def test_from_seed_is_reproducible(self):
        first = FaultPlan.from_seed(42)
        second = FaultPlan.from_seed(42)
        assert [vars(e) for e in first.events] == [
            vars(e) for e in second.events]
        assert [vars(e) for e in first.events] != [
            vars(e) for e in FaultPlan.from_seed(43).events]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("bogus", "error")
        with pytest.raises(ValueError):
            FaultEvent("task", "leak")
        with pytest.raises(ValueError):
            FaultEvent("merge", "error", count=0)

    def test_injected_fault_is_catchable(self):
        with pytest.raises(InjectedFault):
            from repro.engine.faults import apply_worker_fault
            apply_worker_fault(("error", 0.0), in_process_worker=False)


class TestHealthReport:
    def test_merge_sums_counters_and_keeps_latest_backend(self):
        first = HealthReport(backend="processes", task_retries=2,
                             pool_rebuilds=1, degradations=["a->b"])
        second = HealthReport(backend="threads", task_retries=1,
                              segments_recycled=4)
        first.merge(second)
        assert first.task_retries == 3
        assert first.pool_rebuilds == 1
        assert first.segments_recycled == 4
        assert first.backend == "threads"
        assert first.degradations == ["a->b"]

    def test_as_dict_roundtrips_counters(self):
        report = HealthReport(backend="threads", task_retries=1,
                              faults_injected=2, degradations=["x->y"])
        flat = report.as_dict()
        assert flat["task_retries"] == 1
        assert flat["faults_injected"] == 2
        assert flat["degradations"] == ["x->y"]
        assert flat["recovery_actions"] == report.recovery_actions() == 2

    def test_statistics_merge_folds_health(self):
        parent = EvaluationStatistics()
        child = EvaluationStatistics()
        child.health.pool_rebuilds = 2
        child.health.degradations.append("processes->threads")
        parent.merge(child)
        assert parent.health.pool_rebuilds == 2
        assert parent.health.degradations == ["processes->threads"]
