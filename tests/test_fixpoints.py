"""Unit tests for naive / semi-naive evaluation and the derivation graph."""

import pytest

from repro.datalog.atoms import Predicate
from repro.datalog.parser import parse_program, parse_rule
from repro.engine.derivation_graph import build_derivation_graph
from repro.engine.naive import naive_closure
from repro.engine.seminaive import evaluate_exit_rules, seminaive_closure, solve_linear_recursion
from repro.engine.statistics import EvaluationStatistics
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.relation import Relation


def chain_db(length=5):
    return Database.of(Relation.of("edge", 2, [(i, i + 1) for i in range(length)]))


def expected_reachability(length=5):
    return frozenset(
        (i, j) for i in range(length + 1) for j in range(i, length + 1)
    )


TC_RULE = parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y).")
IDENTITY = Relation.of("path", 2, [(i, i) for i in range(6)])


class TestSemiNaive:
    def test_transitive_closure_on_chain(self):
        result = seminaive_closure((TC_RULE,), IDENTITY, chain_db())
        assert result.rows == expected_reachability()

    def test_result_contains_initial(self):
        result = seminaive_closure((TC_RULE,), IDENTITY, chain_db())
        assert IDENTITY.rows <= result.rows

    def test_empty_initial_relation(self):
        empty = Relation.empty("path", 2)
        assert seminaive_closure((TC_RULE,), empty, chain_db()).is_empty()

    def test_statistics_populated(self):
        stats = EvaluationStatistics()
        seminaive_closure((TC_RULE,), IDENTITY, chain_db(), stats)
        assert stats.initial_size == 6
        assert stats.result_size == 21
        assert stats.derivations == stats.duplicates + (21 - 6)
        assert stats.iterations >= 5

    def test_rule_relation_name_mismatch_rejected(self):
        wrong = Relation.of("other", 2, [(0, 0)])
        with pytest.raises(EvaluationError):
            seminaive_closure((TC_RULE,), wrong, chain_db())

    def test_max_iterations_guard(self):
        with pytest.raises(EvaluationError):
            seminaive_closure((TC_RULE,), IDENTITY, chain_db(), max_iterations=1)

    def test_multiple_rules_union(self):
        append = parse_rule("path(X, Y) :- path(X, Z), edge(Z, Y).")
        both = seminaive_closure((TC_RULE, append), IDENTITY, chain_db())
        assert both.rows == expected_reachability()


class TestNaive:
    def test_matches_seminaive(self):
        naive = naive_closure((TC_RULE,), IDENTITY, chain_db())
        semi = seminaive_closure((TC_RULE,), IDENTITY, chain_db())
        assert naive.rows == semi.rows

    def test_naive_produces_at_least_as_many_duplicates(self):
        naive_stats = EvaluationStatistics()
        semi_stats = EvaluationStatistics()
        naive_closure((TC_RULE,), IDENTITY, chain_db(), naive_stats)
        seminaive_closure((TC_RULE,), IDENTITY, chain_db(), semi_stats)
        assert naive_stats.duplicates >= semi_stats.duplicates

    def test_naive_iteration_guard(self):
        with pytest.raises(EvaluationError):
            naive_closure((TC_RULE,), IDENTITY, chain_db(), max_iterations=1)


class TestLinearRecursionDriver:
    def test_solve_with_exit_rules(self):
        program = parse_program(
            """
            path(X, Y) :- edge(X, Z), path(Z, Y).
            path(X, Y) :- edge(X, Y).
            """
        )
        recursion = program.linear_recursion_of(Predicate("path", 2))
        result = solve_linear_recursion(recursion, chain_db())
        assert result.rows == frozenset(
            (i, j) for i in range(6) for j in range(i + 1, 6)
        )

    def test_evaluate_exit_rules_only(self):
        program = parse_program(
            """
            path(X, Y) :- edge(X, Z), path(Z, Y).
            path(X, Y) :- edge(X, Y).
            """
        )
        recursion = program.linear_recursion_of(Predicate("path", 2))
        initial = evaluate_exit_rules(recursion, chain_db())
        assert initial.rows == chain_db().relation("edge").rows


class TestDerivationGraph:
    def test_nodes_and_initial(self):
        graph = build_derivation_graph((TC_RULE,), IDENTITY, chain_db())
        assert IDENTITY.rows <= graph.nodes
        assert graph.initial == set(IDENTITY.rows)

    def test_arc_count_matches_statistics_on_single_rule(self):
        stats = EvaluationStatistics()
        seminaive_closure((TC_RULE,), IDENTITY, chain_db(), stats)
        graph = build_derivation_graph((TC_RULE,), IDENTITY, chain_db())
        assert graph.total_arcs() == stats.derivations

    def test_duplicates_definition(self):
        graph = build_derivation_graph((TC_RULE,), IDENTITY, chain_db())
        derived = graph.nodes - graph.initial
        assert graph.duplicates() == graph.total_arcs() - len(derived)

    def test_in_degree(self):
        graph = build_derivation_graph((TC_RULE,), IDENTITY, chain_db())
        # Tuple (0, 5) is derived only from (1, 5) by prepending edge (0, 1).
        assert graph.in_degree((0, 5)) == 1

    def test_labels_default_to_rule_text(self):
        graph = build_derivation_graph((TC_RULE,), IDENTITY, chain_db())
        assert graph.labels() == frozenset({str(TC_RULE)})

    def test_custom_labels(self):
        graph = build_derivation_graph(
            (TC_RULE,), IDENTITY, chain_db(), labels={TC_RULE: "B"}
        )
        assert graph.labels() == frozenset({"B"})

    def test_nodes_with_duplicates_on_diamond(self):
        # A diamond graph gives (0, 3) two derivations.
        database = Database.of(Relation.of("edge", 2, [(0, 1), (0, 2), (1, 3), (2, 3)]))
        initial = Relation.of("path", 2, [(i, i) for i in range(4)])
        graph = build_derivation_graph((TC_RULE,), initial, database)
        assert (0, 3) in graph.nodes_with_duplicates()
