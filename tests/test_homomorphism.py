"""Unit tests for homomorphism search between rules."""

from repro.cq.homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    homomorphisms,
    is_homomorphism,
)
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable


class TestFindHomomorphism:
    def test_identity_homomorphism(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), e(Z, Y).")
        mapping = find_homomorphism(rule, rule)
        assert mapping is not None
        assert is_homomorphism(mapping, rule, rule)

    def test_folding_homomorphism(self):
        general = parse_rule("p(X) :- e(X, Z), e(X, W).")
        specific = parse_rule("p(X) :- e(X, Z).")
        mapping = find_homomorphism(general, specific)
        assert mapping is not None
        assert mapping[Variable("Z")] == mapping[Variable("W")]

    def test_no_homomorphism_when_atom_missing(self):
        source = parse_rule("p(X) :- e(X, Z), f(Z).")
        target = parse_rule("p(X) :- e(X, Z).")
        assert find_homomorphism(source, target) is None

    def test_distinguished_variables_must_be_fixed(self):
        source = parse_rule("p(X, Y) :- e(X, Y).")
        target = parse_rule("p(X, Y) :- e(Y, X).")
        assert find_homomorphism(source, target) is None

    def test_head_predicate_must_match(self):
        source = parse_rule("p(X) :- e(X, X).")
        target = parse_rule("q(X) :- e(X, X).")
        assert find_homomorphism(source, target) is None

    def test_constants_map_to_themselves(self):
        source = parse_rule("p(X) :- e(X, a).")
        target_same = parse_rule("p(X) :- e(X, a).")
        target_other = parse_rule("p(X) :- e(X, b).")
        assert find_homomorphism(source, target_same) is not None
        assert find_homomorphism(source, target_other) is None

    def test_positional_head_correspondence(self):
        # Heads with different variable names but the same pattern.
        source = parse_rule("p(A, B) :- e(A, B).")
        target = parse_rule("p(X, Y) :- e(X, Y), f(Y).")
        mapping = find_homomorphism(source, target)
        assert mapping is not None
        assert mapping[Variable("A")] == Variable("X")


class TestEnumerationAndChecking:
    def test_homomorphism_count_on_cycle(self):
        # Body is a 2-cycle with no head variables involved: both rotations work.
        source = parse_rule("p(X) :- q(X), e(A, B), e(B, A).")
        target = parse_rule("p(X) :- q(X), e(A, B), e(B, A).")
        assert count_homomorphisms(source, target) >= 2

    def test_homomorphisms_yields_only_valid_mappings(self):
        source = parse_rule("p(X) :- e(X, Z), f(Z, W).")
        target = parse_rule("p(X) :- e(X, U), f(U, V), f(U, W).")
        for mapping in homomorphisms(source, target):
            assert is_homomorphism(mapping, source, target)

    def test_is_homomorphism_rejects_bad_mapping(self):
        source = parse_rule("p(X) :- e(X, Z).")
        target = parse_rule("p(X) :- e(X, U).")
        bad = {Variable("Z"): Variable("X")}
        assert not is_homomorphism(bad, source, target)

    def test_count_respects_limit(self):
        source = parse_rule("p(X) :- q(X), e(A, B).")
        target = parse_rule("p(X) :- q(X), e(A, B), e(C, D), e(E, F).")
        assert count_homomorphisms(source, target, limit=2) == 2

    def test_empty_body_always_maps(self):
        source = parse_rule("p(a).")
        target = parse_rule("p(a).")
        assert find_homomorphism(source, target) is not None
