"""Unit tests for :class:`repro.storage.index.HashIndex` and the
per-database index cache."""

import pytest

from repro.exceptions import SchemaError
from repro.storage.database import Database
from repro.storage.index import HashIndex
from repro.storage.relation import Relation


def _colour_relation():
    return Relation.of(
        "colour", 2, [(1, "red"), (2, "red"), (3, "blue"), (4, "red")]
    )


class TestHashIndex:
    def test_single_position_lookup(self):
        index = HashIndex(_colour_relation(), (1,))
        assert sorted(index.lookup(("red",))) == [(1, "red"), (2, "red"), (4, "red")]
        assert index.lookup(("blue",)) == [(3, "blue")]

    def test_missing_key_returns_empty(self):
        index = HashIndex(_colour_relation(), (1,))
        assert index.lookup(("green",)) == []

    def test_empty_positions_is_full_scan(self):
        relation = _colour_relation()
        index = HashIndex(relation, ())
        assert sorted(index.lookup(())) == sorted(relation.rows)
        assert list(index.keys()) == [()]
        assert len(index) == 1

    def test_empty_positions_over_empty_relation(self):
        index = HashIndex(Relation.empty("e", 2), ())
        assert index.lookup(()) == []
        assert len(index) == 0

    def test_bucket_collects_all_rows_with_key(self):
        # Three rows share the "red" key: one bucket, three rows.
        index = HashIndex(_colour_relation(), (1,))
        assert len(index.lookup(("red",))) == 3
        assert len(index) == 2  # two distinct keys

    def test_multi_position_key(self):
        relation = Relation.of("t", 3, [(1, 2, 3), (1, 2, 4), (1, 5, 3)])
        index = HashIndex(relation, (0, 1))
        assert sorted(index.lookup((1, 2))) == [(1, 2, 3), (1, 2, 4)]
        assert index.lookup((1, 5)) == [(1, 5, 3)]

    def test_keys_are_distinct(self):
        index = HashIndex(_colour_relation(), (1,))
        assert sorted(index.keys()) == [("blue",), ("red",)]

    def test_repeated_key_positions(self):
        # An index may key the same column twice; the key then repeats
        # that column's value and lookups must match it positionally.
        relation = Relation.of("t", 2, [(1, 2), (3, 4)])
        index = HashIndex(relation, (0, 0))
        assert index.lookup((1, 1)) == [(1, 2)]
        assert index.lookup((1, 3)) == []


class TestLookupBatch:
    def test_batch_matches_single_lookups(self):
        index = HashIndex(_colour_relation(), (1,))
        batched = index.lookup_batch([("red",), ("green",), ("blue",)])
        assert batched == [index.lookup(("red",)), [], index.lookup(("blue",))]

    def test_batch_over_empty_relation(self):
        index = HashIndex(Relation.empty("e", 2), (0,))
        assert index.lookup_batch([(1,), (2,)]) == [[], []]

    def test_batch_with_no_keys(self):
        index = HashIndex(_colour_relation(), (1,))
        assert index.lookup_batch([]) == []

    def test_batch_with_empty_positions_tuple(self):
        relation = _colour_relation()
        index = HashIndex(relation, ())
        (bucket,) = index.lookup_batch([()])
        assert sorted(bucket) == sorted(relation.rows)

    def test_batch_on_arity_zero_relation(self):
        populated = HashIndex(Relation.of("n", 0, [()]), ())
        assert populated.lookup_batch([()]) == [[()]]
        empty = HashIndex(Relation.empty("n", 0), ())
        assert empty.lookup_batch([()]) == [[]]

    def test_batch_with_repeated_key_positions(self):
        relation = Relation.of("t", 2, [(1, 1), (1, 2)])
        index = HashIndex(relation, (0, 1))
        one_one, one_two = index.lookup_batch([(1, 1), (1, 2)])
        assert one_one == [(1, 1)]
        assert one_two == [(1, 2)]


class TestHashIndexExtend:
    def test_extend_appends_to_existing_buckets(self):
        relation = _colour_relation()
        index = HashIndex(relation, (1,))
        grown = relation.with_rows([(5, "red"), (6, "green")])
        index.extend({(5, "red"), (6, "green")}, grown)
        assert index.relation is grown
        assert sorted(index.lookup(("red",))) == [
            (1, "red"), (2, "red"), (4, "red"), (5, "red")
        ]
        assert index.lookup(("green",)) == [(6, "green")]

    def test_extend_full_scan_index(self):
        relation = Relation.of("r", 1, [(1,)])
        index = HashIndex(relation, ())
        grown = relation.with_rows([(2,)])
        index.extend({(2,)}, grown)
        assert sorted(index.lookup(())) == [(1,), (2,)]

    def test_extend_empty_full_scan_index_with_nothing(self):
        relation = Relation.empty("r", 1)
        index = HashIndex(relation, ())
        index.extend(set(), relation)
        assert index.lookup(()) == []
        assert len(index) == 0


class TestDatabaseIndexCache:
    def test_index_is_cached_per_name_and_positions(self):
        database = Database.of(_colour_relation())
        first = database.index("colour", 2, (1,))
        second = database.index("colour", 2, (1,))
        assert first is second

    def test_different_positions_get_different_indexes(self):
        database = Database.of(_colour_relation())
        assert database.index("colour", 2, (0,)) is not database.index("colour", 2, (1,))

    def test_functional_update_gets_fresh_cache(self):
        database = Database.of(_colour_relation())
        stale = database.index("colour", 2, (1,))
        updated = database.with_relation(
            _colour_relation().with_rows([(9, "green")])
        )
        fresh = updated.index("colour", 2, (1,))
        assert fresh is not stale
        assert fresh.lookup(("green",)) == [(9, "green")]
        # The old database's cached index is untouched.
        assert stale.lookup(("green",)) == []

    def test_unknown_relation_indexes_as_empty(self):
        database = Database.of(_colour_relation())
        index = database.index("missing", 3, (0,))
        assert index.lookup((1,)) == []

    def test_wrong_arity_raises_even_after_cache_hit(self):
        # Regression: the cache key must include the arity, otherwise a
        # wrong-arity request could silently reuse an index cached under
        # the correct arity instead of raising SchemaError.
        database = Database.of(_colour_relation())
        database.index("colour", 2, ())
        with pytest.raises(SchemaError):
            database.index("colour", 1, ())
