"""Tests for the interned (dictionary-encoded) execution layer.

Covers the :mod:`repro.storage.domain` primitives (Domain,
InternedRelation, IntIndex), the interned executor's parity with the
batch/rows executors (results, derivation/duplicate statistics and
low-level join counters, on every backend and every driver), the packed
closure, incremental delta maintenance, and the interned ``explain``
pipeline.
"""

from __future__ import annotations

import pickle
from array import array

import pytest

from test_parallel import SCENARIOS, scenario_layered_tc, stats_signature

from repro.datalog.parser import parse_rule
from repro.engine.decomposed import decomposed_closure
from repro.engine.naive import naive_closure
from repro.engine.parallel import BACKENDS, EvalConfig
from repro.engine.plan import compile_rule
from repro.engine.seminaive import seminaive_closure, solve_linear_recursion
from repro.engine.separable import separable_evaluate
from repro.engine.statistics import EvaluationStatistics, JoinCounters
from repro.engine.vectorized import (
    InternedDeltaCache,
    PackedBinaryJoin,
    decode_packed_pairs,
    execute_batch,
    execute_interned,
    execute_interned_into,
    execute_interned_packed,
)
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.domain import Domain, IntIndex, InternedRelation
from repro.storage.relation import Relation
from repro.storage.selection import EqualitySelection


def interned_config(backend: str = "serial",
                    incremental: bool = True) -> EvalConfig:
    if backend == "serial":
        return EvalConfig(executor="batch", intern=True,
                          incremental_deltas=incremental)
    return EvalConfig(executor="batch", intern=True, backend=backend,
                      max_workers=2, partitions=3,
                      incremental_deltas=incremental)


def run_seminaive(scenario: str, config: EvalConfig | None):
    rules, database, initial = SCENARIOS[scenario]()
    database = Database(dict(database.relations))
    statistics = EvaluationStatistics()
    relation = seminaive_closure(rules, initial, database, statistics,
                                 config=config)
    return relation, statistics


def full_signature(statistics: EvaluationStatistics):
    return (stats_signature(statistics), statistics.joins.rows_probed,
            statistics.joins.bindings_extended,
            statistics.joins.tuples_emitted)


# ----------------------------------------------------------------------
# Domain
# ----------------------------------------------------------------------


class TestDomain:
    def test_intern_is_dense_and_idempotent(self):
        domain = Domain()
        assert domain.intern("a") == 0
        assert domain.intern("b") == 1
        assert domain.intern("a") == 0
        assert len(domain) == 2
        assert domain.value_of(1) == "b"

    def test_intern_row_and_decode_row(self):
        domain = Domain()
        ids = domain.intern_row((1, "x", None))
        assert domain.decode_row(ids) == (1, "x", None)

    def test_values_snapshot_and_seed_replay(self):
        domain = Domain()
        for value in ("p", "q", "r"):
            domain.intern(value)
        replayed = Domain()
        replayed.seed(domain.values_snapshot())
        assert replayed.intern("q") == domain.intern("q")
        assert list(replayed) == list(domain)

    def test_snapshot_tail(self):
        domain = Domain(["a", "b"])
        domain.intern("c")
        assert domain.values_snapshot(2) == ["c"]

    def test_contains_and_views(self):
        domain = Domain(["v"])
        assert "v" in domain
        assert "w" not in domain
        assert domain.values_view()[0] == "v"

    def test_none_and_mixed_types_are_legal_values(self):
        domain = Domain()
        first = domain.intern(None)
        second = domain.intern(0)
        # 0 == False and None is distinct; ids must separate by equality.
        assert first != second
        assert domain.value_of(first) is None


# ----------------------------------------------------------------------
# InternedRelation / IntIndex
# ----------------------------------------------------------------------


class TestInternedRelation:
    def test_columns_are_row_aligned_arrays(self):
        domain = Domain()
        relation = Relation.of("q", 2, [(1, "a"), (2, "b")])
        interned = InternedRelation.from_relation(relation, domain)
        assert len(interned) == 2
        assert all(isinstance(column, array) for column in interned.columns)
        rows = {
            (domain.value_of(interned.columns[0][j]),
             domain.value_of(interned.columns[1][j]))
            for j in range(interned.length)
        }
        assert rows == set(relation.rows)

    def test_flat_round_trip(self):
        domain = Domain()
        relation = Relation.of("q", 3, [(1, 2, 3), (4, 5, 6)])
        interned = InternedRelation.from_relation(relation, domain)
        back = InternedRelation.from_flat("q", 3, interned.to_flat())
        assert [list(column) for column in back.columns] == \
            [list(column) for column in interned.columns]

    def test_flat_rejects_ragged_buffer(self):
        with pytest.raises(ValueError, match="multiple"):
            InternedRelation.from_flat("q", 2, array("q", [1, 2, 3]))

    def test_arity_zero(self):
        domain = Domain()
        relation = Relation.of("n", 0, [()])
        interned = InternedRelation.from_relation(relation, domain)
        assert interned.length == 1
        assert interned.columns == ()
        assert len(InternedRelation.from_flat("n", 0, array("q"), length=1)) == 1

    def test_extend_with_interns_new_rows(self):
        domain = Domain()
        relation = Relation.of("q", 1, [(1,)])
        interned = InternedRelation.from_relation(relation, domain)
        interned.extend_with([(2,), (3,)], domain)
        assert interned.length == 3
        assert sorted(domain.value_of(i) for i in interned.columns[0]) == [1, 2, 3]


class TestIntIndex:
    def _interned(self, rows, arity=2):
        domain = Domain()
        return domain, InternedRelation.from_relation(
            Relation.of("q", arity, rows), domain
        )

    def test_single_key_raw_int_buckets(self):
        domain, interned = self._interned([(1, 10), (1, 11), (2, 20)])
        index = IntIndex(interned, (0,), (1,))
        key = domain.intern(1)
        payloads = {domain.value_of(i) for i in index.lookup(key)}
        assert payloads == {10, 11}
        assert index.lookup(domain.intern(99) if 99 in domain else -1) == []

    def test_multi_key_tuple_buckets(self):
        domain, interned = self._interned([(1, 10), (1, 11)])
        index = IntIndex(interned, (0, 1), ())
        assert index.counted
        key = (domain.intern(1), domain.intern(10))
        assert index.lookup(key) == 1

    def test_empty_key_full_scan_bucket(self):
        domain, interned = self._interned([(1, 10), (2, 20)])
        index = IntIndex(interned, (), (0, 1))
        assert len(index.lookup(())) == 2

    def test_counted_buckets_accumulate(self):
        domain, interned = self._interned([(1, 10), (1, 11), (2, 20)])
        index = IntIndex(interned, (0,), ())
        assert index.lookup(domain.intern(1)) == 2
        assert index.lookup(-5) == 0

    def test_extend_from_columns_appends(self):
        domain, interned = self._interned([(1, 10)])
        index = IntIndex(interned, (0,), (1,))
        interned.extend_with([(1, 12), (3, 30)], domain)
        index.extend_from_columns(interned.columns, 1, interned.length)
        assert index.length == 3
        assert len(index.lookup(domain.intern(1))) == 2

    def test_premultiplied_caches_and_tracks_growth(self):
        domain, interned = self._interned([(1, 10), (2, 20)])
        index = IntIndex(interned, (0,), (1,))
        raw = index.premultiplied(1)
        assert raw is index.buckets
        doubled = index.premultiplied(7)
        key = domain.intern(1)
        assert doubled[key] == [7 * i for i in index.buckets[key]]
        assert index.premultiplied(7) is doubled
        interned.extend_with([(1, 13)], domain)
        index.extend_from_columns(interned.columns, 2, interned.length)
        refreshed = index.premultiplied(7)
        assert refreshed is not doubled
        assert len(refreshed[key]) == 2

    def test_premultiplied_requires_single_payload(self):
        domain, interned = self._interned([(1, 10)])
        with pytest.raises(ValueError):
            IntIndex(interned, (0,), ()).premultiplied(3)


# ----------------------------------------------------------------------
# Extension lineage and cache maintenance
# ----------------------------------------------------------------------


class TestExtensionLineage:
    def test_extended_with_records_added_rows(self):
        from repro.storage.relation import rows_added_since

        base = Relation.of("r", 1, [(1,)])
        grown = base.extended_with([(2,), (1,)])
        assert grown.rows == frozenset({(1,), (2,)})
        assert rows_added_since(grown, base) == frozenset({(2,)})
        assert rows_added_since(base, base) == frozenset()
        assert rows_added_since(grown, Relation.of("r", 1, [(1,)])) is None

    def test_chain_walk(self):
        from repro.storage.relation import rows_added_since

        first = Relation.of("r", 1, [(1,)])
        second = first.extended_with([(2,)])
        third = second.extended_with([(3,)])
        assert rows_added_since(third, first) == frozenset({(2,), (3,)})

    def test_extended_relation_pickles_without_lineage(self):
        base = Relation.of("r", 1, [(1,)])
        grown = base.extended_with([(2,)])
        copy = pickle.loads(pickle.dumps(grown))
        assert copy.rows == grown.rows

    def test_database_index_extends_in_place(self):
        base = Relation.of("r", 2, [(1, 2)])
        database = Database.of(base)
        index = database.index("r", 2, (0,))
        database.relations["r"] = base.extended_with([(1, 3), (4, 4)])
        extended = database.index("r", 2, (0,))
        assert extended is index
        assert sorted(extended.lookup((1,))) == [(1, 2), (1, 3)]

    def test_database_index_rebuilds_without_lineage(self):
        base = Relation.of("r", 2, [(1, 2)])
        database = Database.of(base)
        index = database.index("r", 2, (0,))
        database.relations["r"] = Relation.of("r", 2, [(9, 9)])
        rebuilt = database.index("r", 2, (0,))
        assert rebuilt is not index
        assert rebuilt.lookup((9,)) == [(9, 9)]

    def test_interned_relation_cache_extends(self):
        base = Relation.of("r", 2, [(1, 2)])
        database = Database.of(base)
        interned = database.interned_relation("r", 2)
        index = database.interned_index("r", 2, (0,), (1,))
        database.relations["r"] = base.extended_with([(1, 3)])
        grown = database.interned_relation("r", 2)
        assert grown is interned
        assert grown.length == 2
        grown_index = database.interned_index("r", 2, (0,), (1,))
        assert grown_index is index
        assert grown_index.length == 2

    def test_row_set_builder_freezes_form_a_chain(self):
        from repro.storage.relation import RowSetBuilder, rows_added_since

        builder = RowSetBuilder("r", 1, [(1,)])
        first = builder.freeze()
        builder.add_all_new({(2,), (3,)})
        second = builder.freeze()
        assert rows_added_since(second, first) == frozenset({(2,), (3,)})


# ----------------------------------------------------------------------
# Executor parity
# ----------------------------------------------------------------------


RULE_SHAPE_CASES = [
    ("p(X, Y) :- edge(X, Z), path(Z, Y).",
     {"edge": [(0, 1), (1, 2)], "path": [(1, 1), (2, 2)]}),
    ("p(X, Y) :- p0(U, Y), q0(X, U), X = 1.",
     {"p0": [(0, 1), (1, 2)], "q0": [(1, 0), (2, 1)]}),
    ("p(X, X) :- p0(U, X), q0(U, U).",
     {"p0": [(0, 1), (1, 1)], "q0": [(1, 1), (0, 2)]}),
    ("p(X) :- q(X, X).", {"q": [(None, None), (None, 1), (2, 2)]}),
    ("p(X) :- q(X, 5).", {"q": [(1, 5), (2, 6)]}),
    ("p(X) :- q(X), r(Y).", {"q": [(1,), (2,)], "r": [(7,), (8,)]}),
    ("p(X, Y) :- q(X, Y), X = Y.", {"q": [(1, 1), (1, 2)]}),
    ("p(1, 2).", {}),
    ("p(X, Y) :- q(X), Y = 7.", {"q": [(3,), (4,)]}),
    ("p(A, B, C, D, E) :- w(U, B, C, D, E), l(A, U), m(A).",
     {"w": [(0, 1, 2, 3, 4), (1, 5, 6, 7, 8)],
      "l": [(9, 0), (8, 1), (7, 1)], "m": [(9,), (7,)]}),
    ("p(X, Y) :- q(X, Z, W), r(Z, W, Y).",
     {"q": [(1, 2, 3), (4, 5, 6)], "r": [(2, 3, 9), (2, 3, 7)]}),
]


class TestExecutorParity:
    @pytest.mark.parametrize("rule_text,relations", RULE_SHAPE_CASES)
    def test_interned_matches_batch_pairs_and_counters(self, rule_text,
                                                       relations):
        rel_objs = [
            Relation.of(name, len(next(iter(rows))), rows)
            for name, rows in relations.items()
        ]
        database = Database.of(*rel_objs)
        plan = compile_rule(parse_rule(rule_text), database)
        batch_counters = JoinCounters()
        batch_pairs = execute_batch(plan, database, counters=batch_counters)
        interned_counters = JoinCounters()
        interned_pairs = execute_interned(plan, database,
                                          counters=interned_counters)
        assert dict(interned_pairs) == dict(batch_pairs)
        assert len(interned_pairs) == len(batch_pairs)
        assert interned_counters == batch_counters

    def test_packed_and_into_agree_with_decoded(self):
        database = Database.of(Relation.of("q", 2, [(1, 5), (1, 6), (2, 5)]))
        plan = compile_rule(parse_rule("p(X) :- q(X, Y)."), database)
        pairs = execute_interned(plan, database)
        packed_pairs, base_k, arity = execute_interned_packed(plan, database)
        decoded = decode_packed_pairs(packed_pairs, base_k, arity,
                                      database.domain())
        assert sorted(decoded) == sorted(pairs)
        sink: set[int] = set()
        total, base_k2, _ = execute_interned_into(plan, database, sink)
        assert total == sum(count for _, count in pairs)
        assert len(sink) == len(pairs)

    def test_unsafe_equality_raises_only_when_reached(self):
        rule = parse_rule("p(X) :- q(X), Y = Z.")
        empty = Database.of(Relation.of("q", 1, []))
        assert execute_interned(compile_rule(rule, empty), empty) == []
        populated = Database.of(Relation.of("q", 1, [(1,)]))
        with pytest.raises(EvaluationError, match="no bound side"):
            execute_interned(compile_rule(rule, populated), populated)

    def test_override_arity_mismatch_raises(self):
        database = Database.of(Relation.of("q", 2, [(1, 2)]))
        plan = compile_rule(parse_rule("p(X) :- q(X, Y)."), database)
        with pytest.raises(EvaluationError, match="arity"):
            execute_interned(plan, database,
                             overrides={"q": Relation.of("q", 3, [])})

    def test_delta_cache_domain_mismatch_raises(self):
        database = Database.of(Relation.of("q", 1, [(1,)]))
        plan = compile_rule(parse_rule("p(X) :- q(X)."), database)
        with pytest.raises(EvaluationError, match="domain"):
            execute_interned(plan, database,
                             deltas=InternedDeltaCache(Domain()))

    def test_interned_relation_override_runs_without_decoding(self):
        database = Database.of(Relation.of("edge", 2, [(0, 1), (1, 2)]))
        plan = compile_rule(
            parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."), database
        )
        domain = database.domain()
        delta = InternedRelation.from_relation(
            Relation.of("path", 2, [(1, 1), (2, 2)]), domain
        )
        pairs = execute_interned(plan, database, overrides={"path": delta})
        assert sorted(row for row, _ in pairs) == [(0, 1), (1, 2)]


# ----------------------------------------------------------------------
# Driver-level parity on every scenario and backend
# ----------------------------------------------------------------------


class TestDriverParity:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_serial_interned_matches_rows_exactly(self, scenario):
        rows_rel, rows_stats = run_seminaive(scenario, None)
        interned_rel, interned_stats = run_seminaive(scenario,
                                                     interned_config())
        assert interned_rel.rows == rows_rel.rows
        assert interned_stats.as_dict() == rows_stats.as_dict()
        assert full_signature(interned_stats) == full_signature(rows_stats)

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_interned_composes_with_parallel_backends(self, scenario, backend):
        rows_rel, rows_stats = run_seminaive(scenario, None)
        interned_rel, interned_stats = run_seminaive(
            scenario, interned_config(backend)
        )
        assert interned_rel.rows == rows_rel.rows
        assert stats_signature(interned_stats) == stats_signature(rows_stats)

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_incremental_and_rebuild_agree(self, scenario):
        incremental_rel, incremental_stats = run_seminaive(
            scenario, interned_config()
        )
        rebuild_rel, rebuild_stats = run_seminaive(
            scenario, interned_config(incremental=False)
        )
        assert incremental_rel.rows == rebuild_rel.rows
        assert full_signature(incremental_stats) == full_signature(rebuild_stats)

    def test_three_interned_runs_identical(self):
        outcomes = []
        for _ in range(3):
            relation, statistics = run_seminaive("two-sided-paths",
                                                 interned_config())
            outcomes.append((repr(relation.sorted_rows()).encode(),
                             full_signature(statistics)))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_naive_interned_matches_rows(self):
        rules, database, initial = scenario_layered_tc()

        def run(config):
            statistics = EvaluationStatistics()
            relation = naive_closure(
                rules, initial, Database(dict(database.relations)), statistics,
                config=config,
            )
            return relation, statistics

        rows_rel, rows_stats = run(None)
        for config in (interned_config(), interned_config(incremental=False)):
            interned_rel, interned_stats = run(config)
            assert interned_rel.rows == rows_rel.rows
            assert interned_stats.as_dict() == rows_stats.as_dict()

    def test_decomposed_interned_matches_rows(self, tc_rules):
        first, second = tc_rules
        q = Relation.of("q", 2, [(i, i + 1) for i in range(8)])
        r = Relation.of("r", 2, [(i, i + 1) for i in range(8)])
        initial = Relation.of("p", 2, [(0, 0), (3, 3)])

        def run(config):
            statistics = EvaluationStatistics()
            relation = decomposed_closure(
                [(first,), (second,)], initial, Database.of(q, r), statistics,
                config=config,
            )
            return relation, statistics

        rows_rel, rows_stats = run(None)
        interned_rel, interned_stats = run(interned_config())
        assert interned_rel.rows == rows_rel.rows
        assert interned_stats.as_dict() == rows_stats.as_dict()

    def test_separable_interned_matches_rows(self):
        outer = (parse_rule("reach(X, Y) :- left(X, U), reach(U, Y)."),)
        inner = (parse_rule("reach(X, Y) :- reach(X, V), right(V, Y)."),)
        left = Relation.of("left", 2, [(i, i + 1) for i in range(10)])
        right = Relation.of("right", 2, [(i, i + 1) for i in range(10)])
        initial = Relation.of("reach", 2, [(i, i) for i in range(11)])

        def run(config):
            statistics = EvaluationStatistics()
            relation = separable_evaluate(
                outer, inner, EqualitySelection(0, 0), initial,
                Database.of(left, right), statistics, config=config,
            )
            return relation, statistics

        rows_rel, rows_stats = run(None)
        interned_rel, interned_stats = run(interned_config())
        assert interned_rel.rows == rows_rel.rows
        assert interned_stats.as_dict() == rows_stats.as_dict()

    def test_solve_linear_recursion_interned_covers_exit_rules(self):
        from repro.datalog.atoms import Predicate
        from repro.datalog.programs import LinearRecursion

        recursion = LinearRecursion(
            Predicate("path", 2),
            (parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."),),
            (parse_rule("path(X, Y) :- base(X, Y)."),),
        )
        edge = Relation.of("edge", 2, [(i, i + 1) for i in range(6)])
        base = Relation.of("base", 2, [(i, i) for i in range(7)])

        def run(config):
            statistics = EvaluationStatistics()
            relation = solve_linear_recursion(
                recursion, Database.of(edge, base), statistics, config=config,
            )
            return relation, statistics

        rows_rel, rows_stats = run(None)
        interned_rel, interned_stats = run(interned_config())
        assert interned_rel.rows == rows_rel.rows
        assert interned_stats.as_dict() == rows_stats.as_dict()

    def test_wide5_workload_parity(self):
        import random

        from repro.workloads.wide import wide5_workload

        rules, database, initial = wide5_workload(
            6, 6, num_rules=3, rng=random.Random(5)
        )

        def run(config):
            statistics = EvaluationStatistics()
            relation = seminaive_closure(
                rules, initial, Database(dict(database.relations)), statistics,
                config=config,
            )
            return relation, statistics

        rows_rel, rows_stats = run(None)
        interned_rel, interned_stats = run(interned_config())
        assert interned_rel.rows == rows_rel.rows
        assert full_signature(interned_stats) == full_signature(rows_stats)

    def test_string_valued_domain(self):
        edge = Relation.of("edge", 2, [("a", "b"), ("b", "c"), ("c", "d")])
        initial = Relation.of(
            "path", 2, [(v, v) for v in ("a", "b", "c", "d")]
        )
        rule = (parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."),)

        def run(config):
            statistics = EvaluationStatistics()
            relation = seminaive_closure(
                rule, initial, Database.of(edge), statistics, config=config
            )
            return relation, statistics

        rows_rel, rows_stats = run(None)
        interned_rel, interned_stats = run(interned_config())
        assert interned_rel.rows == rows_rel.rows
        assert full_signature(interned_stats) == full_signature(rows_stats)


# ----------------------------------------------------------------------
# PackedBinaryJoin specialisation
# ----------------------------------------------------------------------


class TestPackedBinaryJoin:
    def test_specializes_both_tc_forms(self):
        database = Database.of(Relation.of("edge", 2, [(0, 1)]))
        for text in ("path(X, Y) :- edge(X, Z), path(Z, Y).",
                     "path(X, Y) :- path(X, V), edge(V, Y)."):
            plan = compile_rule(parse_rule(text), database)
            assert PackedBinaryJoin.try_specialize(plan, "path", 7) is not None

    def test_rejects_other_shapes(self):
        database = Database.of(
            Relation.of("edge", 2, [(0, 1)]), Relation.of("m", 1, [(0,)])
        )
        rejected = [
            "path(X, Y) :- edge(X, Z), path(Z, Y), m(X).",  # three atoms
            "p(1, 2).",                                     # fact
            "path(X, X) :- edge(X, Z), path(Z, X).",        # repeat in head/delta
        ]
        for text in rejected:
            plan = compile_rule(parse_rule(text), database)
            name = plan.rule.head.predicate.name
            assert PackedBinaryJoin.try_specialize(plan, name, 7) is None


# ----------------------------------------------------------------------
# EvalConfig knobs
# ----------------------------------------------------------------------


class TestEvalConfigIntern:
    def test_defaults(self):
        config = EvalConfig()
        assert not config.interned()
        assert config.mode() == "rows"

    def test_intern_requires_batch(self):
        with pytest.raises(ValueError, match="batch"):
            EvalConfig(executor="rows", intern=True)

    def test_interned_sugar_normalises(self):
        config = EvalConfig(executor="interned")
        assert config.executor == "batch"
        assert config.intern
        assert config.mode() == "interned"

    def test_interned_composes_with_backends(self):
        for backend in BACKENDS:
            config = EvalConfig(executor="batch", intern=True,
                                backend=backend)
            assert config.interned()


# ----------------------------------------------------------------------
# explain() for interned plans
# ----------------------------------------------------------------------


class TestExplainInterned:
    def test_interned_pipeline_listing(self):
        database = Database.of(Relation.of("edge", 2, [(0, 1)]))
        plan = compile_rule(
            parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."), database
        )
        text = plan.explain(executor="interned")
        lines = text.splitlines()
        assert lines[0].startswith("int-scan path(Z, Y)")
        assert "array'q'" in lines[0]
        assert lines[1].startswith("int-probe edge(X, Z)")
        assert "fused-pack path(X, Y)" in lines[1]
        assert lines[2].startswith("collapse packed ints")
        # The grouped packed-closure specialisation is part of the plan.
        assert lines[-1].startswith(
            "packed-closure specialization: grouped-binary"
        )

    def test_counted_probe_described(self):
        database = Database.of(
            Relation.of("q", 2, [(0, 1)]), Relation.of("m", 1, [(0,)])
        )
        plan = compile_rule(parse_rule("p(X, Y) :- q(X, Y), m(X)."), database)
        assert "payload=counted" in plan.explain(executor="interned")

    def test_fact_plan(self):
        plan = compile_rule(parse_rule("p(1)."))
        assert plan.explain(executor="interned") == plan.explain()

    def test_unknown_executor_still_rejected(self):
        plan = compile_rule(parse_rule("p(X) :- q(X)."))
        with pytest.raises(ValueError, match="executor"):
            plan.explain(executor="simd")
