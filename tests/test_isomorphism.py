"""Unit tests for the fast restricted-class equivalence test (Lemma 5.4)."""

import pytest

from repro.cq.containment import is_equivalent
from repro.cq.isomorphism import fast_equivalence, find_isomorphism
from repro.datalog.parser import parse_rule
from repro.exceptions import NotApplicableError


class TestFastEquivalence:
    def test_identical_rules(self):
        rule = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        assert fast_equivalence(rule, rule)

    def test_renamed_nondistinguished_variables(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        second = parse_rule("p(X, Y) :- p(W, Y), q(X, W).")
        assert fast_equivalence(first, second)

    def test_different_predicates_not_equivalent(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        second = parse_rule("p(X, Y) :- p(U, Y), r(X, U).")
        assert not fast_equivalence(first, second)

    def test_different_wiring_not_equivalent(self):
        first = parse_rule("p(X, Y) :- q(X, Y), r(Y, X).")
        second = parse_rule("p(X, Y) :- q(X, Y), r(X, Y).")
        assert not fast_equivalence(first, second)

    def test_reordered_bodies_are_equivalent(self):
        first = parse_rule("p(X, Y) :- q(X, U), r(U, Y).")
        second = parse_rule("p(X, Y) :- r(U, Y), q(X, U).")
        assert fast_equivalence(first, second)

    def test_non_injective_mapping_rejected(self):
        first = parse_rule("p(X) :- q(X, U), r(X, V).")
        second = parse_rule("p(X) :- q(X, W), r(X, W).")
        assert not fast_equivalence(first, second)

    def test_agrees_with_general_equivalence_on_restricted_rules(self):
        pairs = [
            ("p(X, Y) :- p(U, Y), q(X, U).", "p(X, Y) :- q(X, V), p(V, Y)."),
            ("p(X, Y) :- p(X, V), r(V, Y).", "p(X, Y) :- p(X, V), r(Y, V)."),
            ("p(X) :- p(X), a(X), b(X).", "p(X) :- b(X), p(X), a(X)."),
        ]
        for first_text, second_text in pairs:
            first = parse_rule(first_text)
            second = parse_rule(second_text)
            assert fast_equivalence(first, second) == is_equivalent(first, second)


class TestRestrictions:
    def test_repeated_nonrecursive_predicates_rejected(self):
        rule = parse_rule("p(X) :- q(X, U), q(U, X).")
        with pytest.raises(NotApplicableError):
            fast_equivalence(rule, rule)

    def test_repeated_head_variables_rejected(self):
        rule = parse_rule("p(X, X) :- q(X).")
        with pytest.raises(NotApplicableError):
            fast_equivalence(rule, rule)


class TestFindIsomorphism:
    def test_returns_mapping_fixing_distinguished_variables(self):
        first = parse_rule("p(X, Y) :- q(X, U), r(U, Y).")
        second = parse_rule("p(X, Y) :- q(X, W), r(W, Y).")
        mapping = find_isomorphism(first, second)
        assert mapping is not None
        from repro.datalog.terms import Variable

        assert mapping[Variable("X")] == Variable("X")
        assert mapping[Variable("U")] == Variable("W")

    def test_returns_none_when_predicate_sets_differ(self):
        first = parse_rule("p(X) :- q(X, U).")
        second = parse_rule("p(X) :- q(X, U), s(U).")
        assert find_isomorphism(first, second) is None
