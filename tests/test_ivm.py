"""Tests for incremental view maintenance (counting + DRed).

The central invariant: after **every** committed batch, the maintained
closure and its derived Theorem-3.1 counters (``derivations``,
``duplicates``, ``initial_size``, ``result_size``) are bit-identical
to a from-scratch recompute against the mutated database — across
executors and backends, through insert-only, delete-only and mixed
batches, including full wipes and re-growth.
"""

from __future__ import annotations

import random

import pytest

from repro import Database, EvaluationStatistics, Relation, solve
from repro.datalog.parser import parse_program, parse_rule
from repro.engine.parallel import EvalConfig
from repro.exceptions import SchemaError
from repro.ivm import (
    ChangeSet,
    Delta,
    MaterializedProgram,
    delta_expansions,
    stage_batch,
)
from repro.ivm.delta import DELTA, POST, PRE
from repro.storage.domain import Domain, InternedRelation
from repro.storage.relation import rows_removed_since

TC = (
    "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
    "path(X, Y) :- edge(X, Y)."
)

MULTI = (
    "p(X, Y) :- e(X, Z), p(Z, Y).\n"
    "p(X, Y) :- p(X, Z), f(Z, W), e(W, Y).\n"
    "p(X, Y) :- e(X, Y).\n"
    "p(X, Y) :- f(X, Y), f(Y, X)."
)

CONFIGS = [None, EvalConfig(executor="batch"), EvalConfig.from_spec("interned")]


def edges(pairs):
    return Relation.of("edge", 2, pairs)


def assert_parity(materialized, program, predicate="path"):
    """Maintained (rows, counters) must match a cold recompute."""
    cold_stats = EvaluationStatistics()
    cold = solve(program, materialized.snapshot(), predicate,
                 config=materialized.config, statistics=cold_stats)
    live = materialized.closure(predicate)
    assert live.rows == cold.rows
    stats = materialized.statistics(predicate)
    assert stats.derivations == cold_stats.derivations
    assert stats.duplicates == cold_stats.duplicates
    assert stats.initial_size == cold_stats.initial_size
    assert stats.result_size == cold_stats.result_size


class TestDeltaExpansions:
    def test_one_variant_per_base_occurrence(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, W), e(W, Y).")
        variants = delta_expansions(rule, "p")
        assert [v.delta_name for v in variants] == ["e", "e"]
        first, second = variants
        # Anchor on the first occurrence: delta, then pre-states after.
        assert [a.predicate.name for a in first.rule.body] == [
            "e" + DELTA, "p" + PRE, "e" + PRE]
        # Anchor on the second: post-state before, delta at the anchor.
        assert [a.predicate.name for a in second.rule.body] == [
            "e" + POST, "p" + PRE, "e" + DELTA]

    def test_recursive_and_equality_atoms_pass_through(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y), X = X.")
        (variant,) = delta_expansions(rule, "p")
        names = [None if a.is_equality() else a.predicate.name
                 for a in variant.rule.body]
        assert names == ["e" + DELTA, "p" + PRE, None]

    def test_no_base_atoms_expand_to_nothing(self):
        rule = parse_rule("p(X, Y) :- p(X, Y).")
        assert delta_expansions(rule, "p") == ()


class TestStageBatch:
    def test_nets_deletes_before_inserts(self):
        relations = {"e": Relation.of("e", 2, [(1, 2)])}
        staged = stage_batch(relations, frozenset(), {"e": [(1, 2), (3, 4)]},
                             {"e": [(1, 2)]})
        removed, added = staged["e"]
        # (1, 2) deleted then re-inserted: present before and after.
        assert removed == frozenset()
        assert added == {(3, 4)}

    def test_rejects_idb_names(self):
        with pytest.raises(SchemaError, match="defined by rules"):
            stage_batch({}, frozenset({"p"}), {"p": [(1, 2)]}, {})

    def test_rejects_arity_mismatch(self):
        relations = {"e": Relation.of("e", 2, [(1, 2)])}
        with pytest.raises(SchemaError, match="arity"):
            stage_batch(relations, frozenset(), {"e": [(1, 2, 3)]}, {})


class TestMaterializedProgram:
    def test_single_edge_insert_and_delete(self):
        database = Database.of(edges([("a", "b"), ("b", "c")]))
        materialized = MaterializedProgram(TC, database)
        change = materialized.apply(inserts={"edge": [("c", "d")]})
        assert change.generation == 1
        assert change.relations["edge"].added == {("c", "d")}
        assert change.predicates["path"].added == {
            ("c", "d"), ("b", "d"), ("a", "d")}
        assert_parity(materialized, TC)

        change = materialized.apply(deletes={"edge": [("b", "c")]})
        assert change.predicates["path"].removed == {
            ("b", "c"), ("a", "c"), ("b", "d"), ("a", "d")}
        assert_parity(materialized, TC)

    def test_noop_batch_keeps_generation(self):
        materialized = MaterializedProgram(
            TC, Database.of(edges([("a", "b")])))
        change = materialized.apply(inserts={"edge": [("a", "b")]},
                                    deletes={"edge": [("z", "z")]})
        assert not change
        assert change.generation == 0
        assert materialized.generation == 0

    def test_delete_then_reinsert_in_one_batch_is_net_insert(self):
        materialized = MaterializedProgram(
            TC, Database.of(edges([("a", "b")])))
        change = materialized.apply(
            inserts={"edge": [("a", "b"), ("b", "c")]},
            deletes={"edge": [("a", "b")]})
        assert change.relations["edge"].added == {("b", "c")}
        assert change.relations["edge"].removed == frozenset()
        assert_parity(materialized, TC)

    def test_full_wipe_and_regrow(self):
        pairs = [("a", "b"), ("b", "c"), ("c", "a")]
        materialized = MaterializedProgram(TC, Database.of(edges(pairs)))
        materialized.apply(deletes={"edge": pairs})
        assert materialized.closure("path").rows == frozenset()
        assert_parity(materialized, TC)
        materialized.apply(inserts={"edge": [("x", "y"), ("y", "x")]})
        assert_parity(materialized, TC)

    def test_insert_into_unknown_relation_creates_it(self):
        materialized = MaterializedProgram(
            "p(X, Y) :- e(X, Y).\n"
            "p(X, Y) :- f(X, Z), p(Z, Y).",
            Database.of(Relation.of("e", 2, [(1, 2)])))
        change = materialized.apply(inserts={"f": [(0, 1)]})
        assert change.predicates["p"].added == {(0, 2)}
        assert_parity(materialized, "p(X, Y) :- e(X, Y).\n"
                                    "p(X, Y) :- f(X, Z), p(Z, Y).", "p")

    def test_mutating_idb_is_rejected_without_side_effects(self):
        materialized = MaterializedProgram(
            TC, Database.of(edges([("a", "b")])))
        with pytest.raises(SchemaError, match="defined by rules"):
            materialized.apply(inserts={"path": [("x", "y")]})
        assert materialized.generation == 0
        assert materialized.closure("path").rows == {("a", "b")}

    def test_rejected_batch_leaves_working_database_untouched(self):
        materialized = MaterializedProgram(
            TC, Database.of(edges([("a", "b")])))
        with pytest.raises(SchemaError):
            materialized.apply(inserts={"edge": [("x", "y")],
                                        "path": [("x", "y")]})
        assert materialized.working.relation("edge").rows == {("a", "b")}

    def test_snapshot_is_isolated_from_later_commits(self):
        materialized = MaterializedProgram(
            TC, Database.of(edges([("a", "b")])))
        frozen = materialized.snapshot()
        materialized.apply(inserts={"edge": [("b", "c")]})
        assert frozen.relation("edge").rows == {("a", "b")}
        assert materialized.working.relation("edge").rows == {
            ("a", "b"), ("b", "c")}

    def test_irrelevant_relation_mutation_is_cheap_noop_for_closure(self):
        database = Database.of(edges([("a", "b")]),
                               Relation.of("other", 1, [(1,)]))
        materialized = MaterializedProgram(TC, database)
        change = materialized.apply(inserts={"other": [(2,)]})
        assert "path" not in change.predicates
        assert_parity(materialized, TC)


class TestRandomizedParity:
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=["default", "batch", "interned"])
    @pytest.mark.parametrize("seed", [7, 23])
    def test_tc_mixed_batches(self, config, seed):
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(9)]
        pairs = {(a, b) for a in nodes for b in nodes
                 if a != b and rng.random() < 0.18}
        materialized = MaterializedProgram(
            TC, Database.of(edges(sorted(pairs))), config)
        universe = [(a, b) for a in nodes for b in nodes if a != b]
        current = set(pairs)
        for _ in range(12):
            deletes = set(rng.sample(sorted(current),
                                     min(len(current), rng.randint(0, 3))))
            inserts = {pair for pair in rng.sample(universe, rng.randint(0, 3))}
            materialized.apply(inserts={"edge": inserts},
                               deletes={"edge": deletes})
            current = (current - deletes) | inserts
            assert materialized.working.relation("edge").rows == current
            assert_parity(materialized, TC)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_multi_rule_two_base_relations(self, seed):
        rng = random.Random(seed)
        nodes = list(range(7))
        universe = [(a, b) for a in nodes for b in nodes]
        e_rows = set(rng.sample(universe, 8))
        f_rows = set(rng.sample(universe, 5))
        database = Database.of(Relation.of("e", 2, sorted(e_rows)),
                               Relation.of("f", 2, sorted(f_rows)))
        materialized = MaterializedProgram(MULTI, database)
        for _ in range(8):
            name, rows = rng.choice([("e", e_rows), ("f", f_rows)])
            deletes = set(rng.sample(sorted(rows),
                                     min(len(rows), rng.randint(0, 2))))
            inserts = set(rng.sample(universe, rng.randint(0, 2)))
            materialized.apply(inserts={name: inserts},
                               deletes={name: deletes})
            rows -= deletes
            rows |= inserts
            assert_parity(materialized, MULTI, "p")


class TestMaintainConfig:
    def test_from_spec_maintain_token(self):
        config = EvalConfig.from_spec("interned-processes-maintain")
        assert config.maintain and config.intern
        assert config.backend == "processes"
        assert config.spec() == "interned-processes-maintain"

    def test_from_spec_maintain_alone(self):
        config = EvalConfig.from_spec("maintain")
        assert config.maintain
        assert EvalConfig.from_spec(config.spec()) == config

    def test_from_spec_rejects_duplicate_maintain(self):
        with pytest.raises(ValueError):
            EvalConfig.from_spec("maintain-maintain")


class TestStorageDeltaHelpers:
    def test_rows_removed_since(self):
        base = Relation.of("e", 2, [(1, 2), (2, 3), (3, 4)])
        shrunk = Relation.from_canonical("e", 2, frozenset({(1, 2), (3, 4)}))
        assert rows_removed_since(shrunk, base) == {(2, 3)}
        assert rows_removed_since(base, shrunk) is None  # grew, not shrank
        other = Relation.of("f", 2, [(1, 2)])
        assert rows_removed_since(other, base) is None

    def test_interned_without_rows(self):
        domain = Domain()
        relation = Relation.of("e", 2, [(1, 2), (2, 3), (3, 4)])
        interned = InternedRelation.from_relation(relation, domain)
        shrunk = interned.without_rows(frozenset({(2, 3)}), domain)
        kept = {
            (domain.value_of(shrunk.columns[0][j]),
             domain.value_of(shrunk.columns[1][j]))
            for j in range(shrunk.length)
        }
        assert kept == {(1, 2), (3, 4)}
        assert shrunk.length == 2

    def test_database_shrink_reuses_interned_columns(self):
        database = Database.of(edges([(1, 2), (2, 3), (3, 4)]))
        database.interned_relation("edge", 2)
        database._replace_relation_unchecked(
            Relation.from_canonical("edge", 2, frozenset({(1, 2), (3, 4)})))
        interned = database.interned_relation("edge", 2)
        assert interned.length == 2
        domain = database.domain()
        rows = {
            (domain.value_of(interned.columns[0][j]),
             domain.value_of(interned.columns[1][j]))
            for j in range(interned.length)
        }
        assert rows == {(1, 2), (3, 4)}

    def test_replace_relation_warns(self):
        database = Database.of(edges([(1, 2)]))
        with pytest.warns(DeprecationWarning, match="Session"):
            database.replace_relation(edges([(1, 2), (2, 3)]))
        assert database.relation("edge").rows == {(1, 2), (2, 3)}


class TestChangeSet:
    def test_truthiness_and_touched(self):
        empty = ChangeSet(3)
        assert not empty and empty.touched() == frozenset()
        change = ChangeSet(4, {"edge": Delta(added=frozenset({(1, 2)}))},
                           {"path": Delta(removed=frozenset({(1, 3)}))})
        assert change
        assert change.touched() == {"edge", "path"}
