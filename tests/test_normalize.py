"""Unit tests for repro.datalog.normalize."""

import pytest

from repro.datalog.normalize import (
    eliminate_equalities,
    rectify,
    standardize_many,
    standardize_pair,
)
from repro.datalog.parser import parse_rule
from repro.exceptions import RuleStructureError


class TestRectify:
    def test_no_change_for_rectified_rule(self):
        rule = parse_rule("p(X, Y) :- q(X, Y).")
        assert rectify(rule) is rule

    def test_repeated_head_variable_gets_equality(self):
        rule = parse_rule("p(X, X) :- q(X).")
        rectified = rectify(rule)
        assert not rectified.has_repeated_head_variables()
        equalities = [atom for atom in rectified.body if atom.is_equality()]
        assert len(equalities) == 1

    def test_head_constant_replaced(self):
        rule = parse_rule("p(X, a) :- q(X).")
        rectified = rectify(rule)
        assert all(not term_is_constant for term_is_constant in (
            not hasattr(term, "name") for term in rectified.head.arguments
        ))
        assert any(atom.is_equality() for atom in rectified.body)

    def test_rectified_rule_equivalent_after_equality_elimination(self):
        rule = parse_rule("p(X, X) :- q(X, Y).")
        roundtrip = eliminate_equalities(rectify(rule))
        assert roundtrip.head.predicate == rule.head.predicate
        assert len(roundtrip.body) == len(rule.body)


class TestEliminateEqualities:
    def test_variable_variable_equality(self):
        rule = parse_rule("p(X, Y) :- q(X, Z), Y = Z.")
        simplified = eliminate_equalities(rule)
        assert not any(atom.is_equality() for atom in simplified.body)
        assert simplified.head.arguments[1] in simplified.body[0].arguments

    def test_variable_constant_equality(self):
        rule = parse_rule("p(X) :- q(X, Z), Z = a.")
        simplified = eliminate_equalities(rule)
        assert str(simplified.body[0]) == "q(X, a)"

    def test_trivial_equality_dropped(self):
        rule = parse_rule("p(X) :- q(X), X = X.")
        simplified = eliminate_equalities(rule)
        assert len(simplified.body) == 1

    def test_contradictory_equality_raises(self):
        rule = parse_rule("p(X) :- q(X), a = b.")
        with pytest.raises(RuleStructureError):
            eliminate_equalities(rule)

    def test_head_variable_kept_as_representative(self):
        rule = parse_rule("p(X) :- q(Z), X = Z.")
        simplified = eliminate_equalities(rule)
        assert str(simplified.body[0]) == "q(X)"


class TestStandardizePair:
    def test_same_consequent_after_standardization(self):
        first = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        second = parse_rule("p(A, B) :- p(A, C), f(C, B).")
        first_std, second_std = standardize_pair(first, second)
        assert first_std.head == second_std.head

    def test_no_shared_nondistinguished_variables(self):
        first = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        second = parse_rule("p(X, Y) :- f(X, Z), p(Z, Y).")
        first_std, second_std = standardize_pair(first, second)
        first_nd = set(first_std.nondistinguished_variables())
        second_nd = set(second_std.nondistinguished_variables())
        assert not (first_nd & second_nd)

    def test_different_predicates_rejected(self):
        first = parse_rule("p(X) :- q(X), p(X).")
        second = parse_rule("r(X) :- q(X), r(X).")
        with pytest.raises(RuleStructureError):
            standardize_pair(first, second)

    def test_repeated_head_variables_rectified(self):
        first = parse_rule("p(X, X) :- q(X), p(X, X).")
        second = parse_rule("p(A, B) :- r(A, B), p(A, B).")
        first_std, second_std = standardize_pair(first, second)
        assert not first_std.has_repeated_head_variables()
        assert first_std.head == second_std.head

    def test_standardize_many(self):
        rules = [
            parse_rule("p(X, Y) :- e(X, Z), p(Z, Y)."),
            parse_rule("p(A, B) :- p(A, C), f(C, B)."),
            parse_rule("p(U, V) :- g(U), p(U, V)."),
        ]
        standardized = standardize_many(rules)
        assert len(standardized) == 3
        heads = {rule.head for rule in standardized}
        assert len(heads) == 1

    def test_standardize_many_empty(self):
        assert standardize_many([]) == ()
