"""Tests for the packed-id closure on the parallel backends.

PR 4 proved the serial packed closure bit-identical to the value-space
executors; this suite holds the thread backend (striped shared sink)
and the process backend (shared-memory delta/result exchange) to the
same bar: identical result relations, identical derivation/duplicate
statistics, and identical low-level join counters, across every backend
× ``incremental_deltas`` setting, on the grouped binary, grouped chain
(3-atom, binary and 5-ary heads) and generic interned shapes — plus
byte-identical 3-run determinism, both shared-memory wire formats, and
the leak guarantees of the segment ring (including a worker crash
mid-iteration).
"""

from __future__ import annotations

import os
import pickle
import random
import signal

import pytest

from repro.datalog.parser import parse_rule
from repro.engine import shm
from repro.engine.decomposed import pairwise_decomposed_closure
from repro.engine.naive import naive_closure
from repro.engine.parallel import (
    EvalConfig,
    ParallelEvaluator,
    StripedPackedSink,
)
from repro.engine.plan import compile_rule
from repro.engine.seminaive import seminaive_closure
from repro.engine.statistics import EvaluationStatistics
from repro.engine.vectorized import (
    PackedBinaryJoin,
    PackedChainJoin,
    packed_specialization_shape,
    select_packed_specialization,
)
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.workloads.graphs import layered_dag_edges
from repro.workloads.wide import wide5_workload, wide_multirule_workload

PARALLEL_BACKENDS = ["threads", "processes"]
BACKENDS = ["serial"] + PARALLEL_BACKENDS


def packed_config(backend: str, incremental: bool = True,
                  **kwargs) -> EvalConfig:
    """An interned config that actually partitions on this 1-CPU box."""
    extra = {}
    if backend != "serial":
        extra = {"max_workers": 2, "partitions": 3, "min_partition_rows": 2}
    extra.update(kwargs)
    return EvalConfig(executor="batch", intern=True, backend=backend,
                      incremental_deltas=incremental, **extra)


# ----------------------------------------------------------------------
# Scenarios: one per packed shape class
# ----------------------------------------------------------------------


def scenario_layered_tc():
    """Binary TC — the two-scan ``grouped-binary`` shape."""
    rules = (parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."),)
    database = Database.of(
        layered_dag_edges(6, 8, fanout=2, name="edge", rng=random.Random(11))
    )
    initial = Relation.of(
        "path", 2, [(n, n) for n in sorted(database.active_domain())]
    )
    return rules, database, initial


def scenario_wide_chain():
    """The 3-atom chain rules with a binary head (``grouped-chain``)."""
    return wide_multirule_workload(5, 8, num_rules=4, rng=random.Random(3))


def scenario_wide5():
    """The 3-atom chain rules with the paper's 5-ary head."""
    return wide5_workload(5, 8, num_rules=4, rng=random.Random(3))


def scenario_same_generation():
    """Same-generation: no grouped shape, the generic interned pipeline."""
    rules = (parse_rule("sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."),)
    rng = random.Random(5)
    up = layered_dag_edges(4, 6, fanout=2, name="up", rng=rng)
    down = Relation.of("down", 2, [(b, a) for a, b in up.rows])
    initial = Relation.of("sg", 2, [(i, i) for i in range(6)])
    return rules, Database.of(up, down), initial


SCENARIOS = {
    "layered-tc": scenario_layered_tc,
    "wide-chain": scenario_wide_chain,
    "wide5": scenario_wide5,
    "same-generation": scenario_same_generation,
}


def full_signature(statistics: EvaluationStatistics):
    return (
        statistics.derivations,
        statistics.duplicates,
        statistics.iterations,
        statistics.rule_applications,
        statistics.result_size,
        statistics.joins.rows_probed,
        statistics.joins.bindings_extended,
        statistics.joins.tuples_emitted,
    )


def run_closure(closure, scenario: str, config):
    rules, database, initial = SCENARIOS[scenario]()
    database = Database(dict(database.relations))
    statistics = EvaluationStatistics()
    relation = closure(rules, initial, database, statistics, config=config)
    return relation, statistics


# ----------------------------------------------------------------------
# Parity: backends × incremental_deltas × shapes, full counters
# ----------------------------------------------------------------------


class TestPackedParity:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("incremental", [True, False])
    def test_seminaive_bit_identical_to_rows(self, scenario, backend,
                                             incremental):
        reference, reference_stats = run_closure(
            seminaive_closure, scenario, None
        )
        relation, statistics = run_closure(
            seminaive_closure, scenario, packed_config(backend, incremental)
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)

    @pytest.mark.parametrize("scenario", ["layered-tc", "wide-chain", "wide5"])
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("incremental", [True, False])
    def test_naive_bit_identical_to_rows(self, scenario, backend,
                                         incremental):
        reference, reference_stats = run_closure(naive_closure, scenario, None)
        relation, statistics = run_closure(
            naive_closure, scenario, packed_config(backend, incremental)
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_three_runs_byte_identical(self, backend):
        outcomes = set()
        for _ in range(3):
            relation, statistics = run_closure(
                seminaive_closure, "wide5", packed_config(backend)
            )
            outcomes.add(
                (pickle.dumps(sorted(relation.rows)),
                 full_signature(statistics))
            )
        assert len(outcomes) == 1

    def test_decomposed_and_separable_forward_packed_config(self):
        rules, database, initial = scenario_wide_chain()
        first, second = rules[:2], rules[2:]
        reference_stats = EvaluationStatistics()
        reference = pairwise_decomposed_closure(
            first, second, initial, Database(dict(database.relations)),
            reference_stats,
        )
        statistics = EvaluationStatistics()
        relation = pairwise_decomposed_closure(
            first, second, initial, Database(dict(database.relations)),
            statistics, config=packed_config("processes"),
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)

    def test_all_solo_plans_stay_in_process(self):
        """No splittable plan → no farming out, but results unchanged.

        A rule scanning the recursive predicate twice cannot be
        row-partitioned; with nothing to split, shipping whole deltas
        to a lone worker task is pure overhead, so the closure must
        stay on the in-process path — and still agree with serial.
        """
        rules = (parse_rule("p(X, Y) :- p(X, Z), p(Z, Y)."),)
        initial = Relation.of("p", 2, [(i, i + 1) for i in range(12)])
        database = Database.of()
        reference_stats = EvaluationStatistics()
        reference = seminaive_closure(rules, initial, Database.of(),
                                      reference_stats)
        plans = [compile_rule(rule, database) for rule in rules]
        statistics = EvaluationStatistics()
        with ParallelEvaluator(plans, database,
                               packed_config("processes")) as evaluator:
            packed = evaluator.packed_closure(initial)
            assert packed is not None
            assert not packed._any_splittable
            assert not packed._parallel_ready(len(initial))
            while packed.delta_size():
                statistics.iterations += 1
                packed.step_seminaive(statistics)
            relation = packed.freeze()
            statistics.result_size = len(relation)
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)

    def test_legacy_pickled_exchange_still_agrees(self):
        """``shared_memory=False`` falls back to the PR-4 process path."""
        reference, reference_stats = run_closure(
            seminaive_closure, "wide5", None
        )
        relation, statistics = run_closure(
            seminaive_closure, "wide5",
            packed_config("processes", shared_memory=False),
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)

    def test_flat_wire_format_agrees(self, monkeypatch):
        """Forcing the flat digit wire (huge-domain fallback) is exact."""
        import repro.engine.parallel as parallel

        monkeypatch.setattr(parallel, "packed_wire_fits",
                            lambda base, arity: False)
        reference, reference_stats = run_closure(
            seminaive_closure, "wide5", None
        )
        relation, statistics = run_closure(
            seminaive_closure, "wide5", packed_config("processes")
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)


# ----------------------------------------------------------------------
# The grouped specialisations
# ----------------------------------------------------------------------


class TestGroupedSpecialisations:
    def test_chain_selected_for_wide_rules(self):
        rules, database, _ = scenario_wide_chain()
        plan = compile_rule(rules[0], database)
        special = select_packed_specialization(plan, "wide", 2, 100)
        assert isinstance(special, PackedChainJoin)
        assert special.identity_carry

    def test_chain_selected_for_wide5_rules(self):
        rules, database, _ = scenario_wide5()
        plan = compile_rule(rules[0], database)
        special = select_packed_specialization(plan, "wide5", 5, 100)
        assert isinstance(special, PackedChainJoin)
        assert special.identity_carry
        assert special.v_coeff == 100 ** 4

    def test_binary_still_preferred_for_two_scan_shape(self):
        rules, database, _ = scenario_layered_tc()
        plan = compile_rule(rules[0], database)
        special = select_packed_specialization(plan, "path", 2, 100)
        assert isinstance(special, PackedBinaryJoin)

    def test_generic_shapes_not_specialised(self):
        rules, database, _ = scenario_same_generation()
        plan = compile_rule(rules[0], database)
        assert select_packed_specialization(plan, "sg", 2, 100) is None

    def test_non_identity_orientation_uses_general_groups(self):
        """A chain probing the delta's second digit still groups exactly."""
        rules = (parse_rule("p(X, Y) :- p(X, V), q(V, W), r(W, Y)."),)
        # r's first column feeds the probe; head takes (carried X, probed Y)?
        # This shape binds from the probed row, so it stays generic —
        # assert the planner refuses rather than mis-grouping.
        database = Database.of(
            Relation.of("q", 2, [(i, i + 1) for i in range(6)]),
            Relation.of("r", 2, [(i, i % 3) for i in range(7)]),
        )
        plan = compile_rule(rules[0], database)
        special = select_packed_specialization(plan, "p", 2, 100)
        assert special is None or not special.identity_carry

    def test_explain_annotates_grouped_shapes(self):
        rules, database, _ = scenario_wide5()
        plan = compile_rule(rules[0], database)
        assert packed_specialization_shape(plan) == "grouped-chain"
        text = plan.explain(executor="interned")
        assert "packed-closure specialization: grouped-chain" in text

    def test_chain_counters_match_generic_pipeline(self):
        """The grouped chain's counters equal the generic interned path's.

        The serial rows executor is the neutral arbiter: the wide chain
        scenario runs through PackedChainJoin under ``interned`` and
        through the per-row slot executor under the default config, and
        the counters must agree exactly (delta-first plans).
        """
        reference, reference_stats = run_closure(
            naive_closure, "wide-chain", None
        )
        relation, statistics = run_closure(
            naive_closure, "wide-chain", packed_config("serial")
        )
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)


# ----------------------------------------------------------------------
# The striped thread sink
# ----------------------------------------------------------------------


class TestStripedPackedSink:
    def test_drain_is_union(self):
        sink = StripedPackedSink(4)
        sink.merge({1, 5, 9, 12})
        sink.merge({5, 13, 2})
        assert sink.drain() == {1, 2, 5, 9, 12, 13}

    def test_single_stripe(self):
        sink = StripedPackedSink(1)
        sink.merge({7, 8})
        sink.merge({8, 9})
        assert sink.drain() == {7, 8, 9}

    def test_concurrent_merges(self):
        from concurrent.futures import ThreadPoolExecutor

        sink = StripedPackedSink(4)
        chunks = [set(range(i, 4000, 7)) for i in range(7)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(sink.merge, chunks))
        expected = set()
        for chunk in chunks:
            expected |= chunk
        assert sink.drain() == expected


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------


def _stale_segments() -> list[str]:
    try:
        return [name for name in os.listdir("/dev/shm")
                if name.startswith(shm.SEGMENT_PREFIX)]
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="needs a POSIX /dev/shm")
class TestSharedMemoryLifecycle:
    def test_closure_leaves_no_segments(self):
        assert not _stale_segments()
        run_closure(seminaive_closure, "wide5", packed_config("processes"))
        assert not _stale_segments()

    def test_worker_crash_mid_iteration_recovers_and_leaves_no_segments(self):
        """A SIGKILLed pool is rebuilt, the closure completes exactly.

        The supervisor catches the ``BrokenProcessPool``, rebuilds the
        pool (re-seeded domains, recycled segments) and replays the
        iteration from the last committed state — so the final relation
        and the full counter signature still match the fault-free serial
        reference, with the recovery recorded on the health report.
        """
        assert not _stale_segments()
        reference, reference_stats = run_closure(
            seminaive_closure, "wide5", None
        )
        rules, database, initial = scenario_wide5()
        database = Database(dict(database.relations))
        plans = [compile_rule(rule, database) for rule in rules]
        config = packed_config("processes")
        statistics = EvaluationStatistics()
        with ParallelEvaluator(plans, database, config,
                               health=statistics.health) as evaluator:
            packed = evaluator.packed_closure(initial)
            assert packed is not None
            # One good iteration so the ring's segments exist...
            statistics.iterations += 1
            packed.step_seminaive(statistics)
            assert evaluator._segment_ring is not None
            assert _stale_segments()
            # ...then hard-kill every worker mid-closure.
            assert evaluator._pool is not None
            for process in evaluator._pool._processes.values():
                os.kill(process.pid, signal.SIGKILL)
            while packed.delta_size():
                statistics.iterations += 1
                packed.step_seminaive(statistics)
            relation = packed.freeze()
            statistics.result_size = len(relation)
        assert relation.rows == reference.rows
        assert full_signature(statistics) == full_signature(reference_stats)
        assert statistics.health.pool_rebuilds >= 1
        assert statistics.health.iteration_retries >= 1
        assert statistics.health.segments_recycled >= 1
        assert not _stale_segments()

    def test_worker_crash_with_retries_disabled_raises_without_leaks(self):
        """``max_retries=0, on_failure="raise"`` keeps the old contract:
        the crash surfaces, and the unwind still unlinks every segment."""
        assert not _stale_segments()
        rules, database, initial = scenario_wide5()
        database = Database(dict(database.relations))
        plans = [compile_rule(rule, database) for rule in rules]
        config = packed_config("processes", max_retries=0,
                               on_failure="raise")
        statistics = EvaluationStatistics()
        with pytest.raises(EvaluationError):
            with ParallelEvaluator(plans, database, config) as evaluator:
                packed = evaluator.packed_closure(initial)
                assert packed is not None
                packed.step_seminaive(statistics)
                assert evaluator._pool is not None
                for process in evaluator._pool._processes.values():
                    os.kill(process.pid, signal.SIGKILL)
                packed.step_seminaive(statistics)
        assert not _stale_segments()

    def test_segment_allocation_failure_leaves_no_orphan(self, monkeypatch):
        """Allocate-then-register atomicity in ``ManagedSegment.ensure``.

        If ``SharedMemory`` raises *after* the OS object exists (the
        ``ftruncate``/``mmap`` half of creation fails), the orphan must
        be unlinked before the exception propagates — previously it
        survived unreachable by any ``close_unlink()``.
        """
        assert not _stale_segments()
        real = shm.shared_memory.SharedMemory

        class ExplodingSharedMemory:
            def __init__(self, *args, **kwargs):
                if kwargs.get("create"):
                    # Create the OS object for real, then fail as if the
                    # mapping step had raised.
                    real(*args, **kwargs).close()
                    raise MemoryError("simulated mmap failure")
                self._shm = real(*args, **kwargs)

            def __getattr__(self, name):
                return getattr(self._shm, name)

        monkeypatch.setattr(shm.shared_memory, "SharedMemory",
                            ExplodingSharedMemory)
        segment = shm.ManagedSegment()
        with pytest.raises(MemoryError):
            segment.ensure(64)
        monkeypatch.undo()
        assert not _stale_segments()

    def test_segment_ring_close_is_idempotent(self):
        ring = shm.SegmentRing(2)
        ring.delta.ensure(64)
        ring.result(0).ensure(64)
        assert _stale_segments()
        ring.close()
        ring.close()
        assert not _stale_segments()

    def test_managed_segment_grows_by_replacement(self):
        segment = shm.ManagedSegment()
        segment.ensure(16)
        first = segment.name
        from array import array

        segment.write_q(array("q", [1, 2]))
        assert list(segment.read_q(2)) == [1, 2]
        segment.ensure(1 << 20)
        assert segment.name != first
        assert segment.capacity >= 1 << 20
        segment.close_unlink()
        assert not _stale_segments()


class TestWireFormats:
    def test_packed_wire_bounds(self):
        assert shm.packed_wire_fits(1000, 2)
        assert shm.packed_wire_fits(6000, 5)
        assert not shm.packed_wire_fits(10_000, 5)
        assert shm.packed_wire_fits(7, 0)

    @pytest.mark.parametrize("packed_wire", [True, False])
    def test_encode_decode_roundtrip(self, packed_wire):
        base, arity = 97, 3
        rows = {((5 * base) + 7) * base + 11, 0, base ** 3 - 1}
        buffer = shm.encode_delta(rows, len(rows), arity, base, packed_wire)
        expected_len = len(rows) * (1 if packed_wire else arity)
        assert len(buffer) == expected_len
        decoded = set(shm.decode_result(buffer, len(rows), arity, base,
                                        packed_wire))
        assert decoded == rows
