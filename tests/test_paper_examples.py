"""End-to-end checks of every claim in the paper's worked examples.

This file is the executable version of EXPERIMENTS.md's claim table: one
test per statement the paper makes about Examples 5.1–5.4 and 6.1–6.3 and
about Theorems 3.1, 4.1, 5.1–5.3, 6.2–6.4.
"""

import random

from repro.agraph.classification import classify_variables
from repro.agraph.graph import AlphaGraph
from repro.core.commutativity import (
    commute_by_definition,
    commute_polynomial,
    sufficient_condition,
)
from repro.core.redundancy import (
    direct_closure,
    find_redundant_predicates,
    redundancy_aware_closure,
    redundancy_factorization,
)
from repro.core.separability import is_separable, separable_plan
from repro.cq.containment import is_equivalent
from repro.datalog.composition import compose_chain, power
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.engine.decomposed import decomposed_closure
from repro.engine.seminaive import seminaive_closure
from repro.engine.separable import direct_selection_evaluate, separable_evaluate
from repro.engine.statistics import EvaluationStatistics
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.selection import EqualitySelection
from repro.workloads import scenarios
from repro.workloads.graphs import layered_dag_edges


class TestSection5Examples:
    def test_example_5_2_composite_is_same_generation_shape(self):
        first, second = scenarios.example_5_2_rules()
        report = sufficient_condition(first, second)
        composite = compose_chain(report.first, report.second)
        same_generation = parse_rule("p(X, Y) :- q(X, U), p(U, V), r(V, Y).")
        assert is_equivalent(composite, same_generation)

    def test_example_5_2_all_clause_a(self):
        report = sufficient_condition(*scenarios.example_5_2_rules())
        assert report.satisfied and report.exact
        assert commute_polynomial(*scenarios.example_5_2_rules())

    def test_example_5_3_condition_and_composites(self):
        first, second = scenarios.example_5_3_rules()
        assert sufficient_condition(first, second).satisfied
        assert commute_by_definition(first, second)
        expected = parse_rule("p(X, Y, Z) :- p(U, Y, V), q(X, Y), r(Z, Y).")
        report = sufficient_condition(first, second)
        assert is_equivalent(compose_chain(report.first, report.second), expected)

    def test_example_5_4_shows_condition_not_necessary(self):
        first, second = scenarios.example_5_4_rules()
        assert commute_by_definition(first, second)
        assert not sufficient_condition(first, second).satisfied

    def test_example_5_1_classification(self):
        classes = classify_variables(AlphaGraph(scenarios.example_5_1_rule()))
        assert classes[Variable("Z")].describe() == "free 1-persistent"
        assert classes[Variable("U")].describe() == "free 2-persistent"
        assert classes[Variable("W")].describe() == "link 1-persistent"
        assert classes[Variable("X")].is_general


class TestSection6Examples:
    def test_example_6_1(self):
        rule = scenarios.example_6_1_rule()
        assert {f.predicate_name for f in find_redundant_predicates(rule)} == {"cheap"}

    def test_example_6_2_full_chain_of_claims(self):
        rule = scenarios.example_6_2_rule()
        factorization = redundancy_factorization(rule)
        assert factorization.exponent == 2
        c_squared = power(factorization.factor_c, 2)
        assert is_equivalent(power(rule, 2), compose_chain(factorization.factor_b, c_squared))
        assert is_equivalent(
            compose_chain(factorization.factor_b, c_squared),
            compose_chain(c_squared, factorization.factor_b),
        )

    def test_example_6_3_products_differ_but_theorem_6_4_holds(self):
        rule = scenarios.example_6_3_rule()
        factorization = redundancy_factorization(rule)
        c_squared = power(factorization.factor_c, 2)
        bc = compose_chain(factorization.factor_b, c_squared)
        cb = compose_chain(c_squared, factorization.factor_b)
        assert not is_equivalent(bc, cb)
        assert is_equivalent(compose_chain(c_squared, bc), compose_chain(c_squared, cb))


class TestTheoremLevelClaims:
    def test_theorem_3_1_duplicate_bound_on_a_dag(self):
        rng = random.Random(1)
        database = Database.of(
            layered_dag_edges(5, 4, name="edge", rng=rng),
            layered_dag_edges(5, 4, name="hop", rng=rng),
        )
        initial = Relation.of(
            "path", 2, [(node, node) for node in sorted(database.active_domain())]
        )
        rules = (
            parse_rule("path(X, Y) :- edge(X, U), path(U, Y)."),
            parse_rule("path(X, Y) :- path(X, V), hop(V, Y)."),
        )
        direct_stats = EvaluationStatistics()
        direct = seminaive_closure(rules, initial, database, direct_stats)
        decomposed_stats = EvaluationStatistics()
        decomposed = decomposed_closure([(rules[0],), (rules[1],)], initial, database,
                                        decomposed_stats)
        assert direct.rows == decomposed.rows
        assert decomposed_stats.duplicates <= direct_stats.duplicates

    def test_theorem_4_1_separable_algorithm_correctness(self):
        rng = random.Random(2)
        database = Database.of(
            layered_dag_edges(5, 4, name="left", rng=rng),
            layered_dag_edges(5, 4, name="right", rng=rng),
        )
        initial = Relation.of(
            "reach", 2, [(node, node) for node in sorted(database.active_domain())]
        )
        left = parse_rule("reach(X, Y) :- left(X, U), reach(U, Y).")
        right = parse_rule("reach(X, Y) :- reach(X, V), right(V, Y).")
        selection = EqualitySelection(0, min(database.active_domain()))
        plan = separable_plan(left, right, selection)
        assert plan is not None
        separable = separable_evaluate(
            (plan.outer,), (plan.inner,), selection, initial, database,
            push_into_initial=plan.push_into_initial,
        )
        direct = direct_selection_evaluate((left, right), selection, initial, database)
        assert separable.rows == direct.rows

    def test_theorem_6_2_separable_implies_commutative(self):
        first, second = scenarios.example_5_2_rules()
        assert is_separable(first, second).separable
        assert commute_by_definition(first, second)

    def test_theorem_6_4_redundancy_aware_evaluation_is_correct(self):
        rule = scenarios.example_6_1_rule()
        factorization = redundancy_factorization(rule)
        database = Database.of(
            Relation.of("knows", 2, [(i, i + 1) for i in range(8)]),
            Relation.of("cheap", 1, [(i,) for i in range(0, 9, 2)]),
        )
        initial = Relation.of("buys", 2, [(i, i) for i in range(9)])
        assert redundancy_aware_closure(factorization, initial, database).rows == (
            direct_closure(rule, initial, database).rows
        )

    def test_theorem_5_3_polynomial_test_agrees_with_definition(self):
        pairs = [
            scenarios.example_5_2_rules(),
            scenarios.example_5_3_rules(),
            (
                parse_rule("p(X, Y) :- a(X, U), p(U, Y)."),
                parse_rule("p(X, Y) :- b(X, U), p(U, Y)."),
            ),
        ]
        for first, second in pairs:
            assert commute_polynomial(first, second) == commute_by_definition(first, second)
