"""Tests for the parallel batched executor (repro.engine.parallel).

The correctness bar: every backend (``serial``, ``threads``,
``processes``) must produce the identical result relation and identical
derivation/duplicate statistics as the plain serial compiled path, on
every scenario — and repeated runs of one backend must be byte-identical
and statistically identical (executor determinism).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.datalog.parser import parse_rule
from repro.engine.naive import naive_closure
from repro.engine.parallel import (
    EvalConfig,
    ParallelEvaluator,
    partition_tasks,
    split_relation,
)
from repro.engine.plan import compile_rule
from repro.engine.seminaive import seminaive_closure
from repro.engine.separable import separable_evaluate
from repro.engine.decomposed import decomposed_closure
from repro.engine.statistics import EvaluationStatistics
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.selection import EqualitySelection
from repro.workloads.graphs import layered_dag_edges
from repro.workloads.wide import wide_multirule_workload

BACKENDS = ["serial", "threads", "processes"]


def config_for(backend: str) -> EvalConfig | None:
    if backend == "serial":
        return None
    return EvalConfig(backend=backend, max_workers=2, partitions=3)


# ----------------------------------------------------------------------
# Scenario suite
# ----------------------------------------------------------------------


def scenario_two_sided_paths():
    """Prepend-edge / append-hop reachability over a chain."""
    rules = (
        parse_rule("path(X, Y) :- edge(X, U), path(U, Y)."),
        parse_rule("path(X, Y) :- path(X, V), hop(V, Y)."),
    )
    edge = Relation.of("edge", 2, [(i, i + 1) for i in range(12)])
    hop = Relation.of("hop", 2, [(i, i + 2) for i in range(11)])
    initial = Relation.of("path", 2, [(i, i) for i in range(13)])
    return rules, Database.of(edge, hop), initial


def scenario_same_generation():
    """Same-generation over a random layered DAG."""
    rules = (parse_rule("sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."),)
    rng = random.Random(5)
    up = layered_dag_edges(4, 6, fanout=2, name="up", rng=rng)
    down = Relation.of("down", 2, [(b, a) for a, b in up.rows])
    flat_rows = [(i, i) for i in range(6)]
    initial = Relation.of("sg", 2, flat_rows)
    return rules, Database.of(up, down), initial


def scenario_layered_tc():
    """Single-rule transitive closure over a layered DAG (dense deltas)."""
    rules = (parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."),)
    database = Database.of(
        layered_dag_edges(6, 8, fanout=2, name="edge", rng=random.Random(11))
    )
    initial = Relation.of(
        "path", 2, [(n, n) for n in sorted(database.active_domain())]
    )
    return rules, database, initial


def scenario_wide_multirule():
    """The wide multi-rule workload the benchmark uses."""
    return wide_multirule_workload(5, 8, num_rules=4, rng=random.Random(3))


SCENARIOS = {
    "two-sided-paths": scenario_two_sided_paths,
    "same-generation": scenario_same_generation,
    "layered-tc": scenario_layered_tc,
    "wide-multirule": scenario_wide_multirule,
}


def run_seminaive(scenario: str, backend: str):
    rules, database, initial = SCENARIOS[scenario]()
    # Fresh database so no run ever sees another run's warm index cache.
    database = Database(dict(database.relations))
    statistics = EvaluationStatistics()
    relation = seminaive_closure(
        rules, initial, database, statistics, config=config_for(backend)
    )
    return relation, statistics


def stats_signature(statistics: EvaluationStatistics):
    return (
        statistics.derivations,
        statistics.duplicates,
        statistics.iterations,
        statistics.rule_applications,
        statistics.result_size,
        statistics.joins.tuples_emitted,
    )


# ----------------------------------------------------------------------
# Backend parity
# ----------------------------------------------------------------------


class TestBackendParity:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_seminaive_matches_serial(self, scenario, backend):
        serial_rel, serial_stats = run_seminaive(scenario, "serial")
        parallel_rel, parallel_stats = run_seminaive(scenario, backend)
        assert parallel_rel.rows == serial_rel.rows
        assert stats_signature(parallel_stats) == stats_signature(serial_stats)

    @pytest.mark.parametrize("backend", ["threads"])
    def test_naive_matches_serial(self, backend):
        rules, database, initial = scenario_layered_tc()

        def run(config):
            stats = EvaluationStatistics()
            relation = naive_closure(
                rules, initial, Database(dict(database.relations)), stats,
                config=config,
            )
            return relation, stats

        serial_rel, serial_stats = run(None)
        parallel_rel, parallel_stats = run(config_for(backend))
        assert parallel_rel.rows == serial_rel.rows
        assert stats_signature(parallel_stats) == stats_signature(serial_stats)

    def test_decomposed_matches_serial(self, tc_rules):
        first, second = tc_rules
        q = Relation.of("q", 2, [(i, i + 1) for i in range(8)])
        r = Relation.of("r", 2, [(i, i + 1) for i in range(8)])
        initial = Relation.of("p", 2, [(0, 0), (3, 3)])

        def run(config):
            stats = EvaluationStatistics()
            relation = decomposed_closure(
                [(first,), (second,)], initial, Database.of(q, r), stats,
                config=config,
            )
            return relation, stats

        serial_rel, serial_stats = run(None)
        threads_rel, threads_stats = run(config_for("threads"))
        assert threads_rel.rows == serial_rel.rows
        assert stats_signature(threads_stats) == stats_signature(serial_stats)

    def test_separable_matches_serial(self):
        outer = (parse_rule("reach(X, Y) :- left(X, U), reach(U, Y)."),)
        inner = (parse_rule("reach(X, Y) :- reach(X, V), right(V, Y)."),)
        left = Relation.of("left", 2, [(i, i + 1) for i in range(10)])
        right = Relation.of("right", 2, [(i, i + 1) for i in range(10)])
        initial = Relation.of("reach", 2, [(i, i) for i in range(11)])
        selection = EqualitySelection(0, 0)

        def run(config):
            stats = EvaluationStatistics()
            relation = separable_evaluate(
                outer, inner, selection, initial, Database.of(left, right),
                stats, config=config,
            )
            return relation, stats

        serial_rel, serial_stats = run(None)
        threads_rel, threads_stats = run(config_for("threads"))
        assert threads_rel.rows == serial_rel.rows
        assert stats_signature(threads_stats) == stats_signature(serial_stats)

    def test_serial_config_is_plain_path(self):
        """EvalConfig('serial') matches config=None bit for bit, probes included."""
        rel_none, stats_none = run_seminaive("layered-tc", "serial")
        stats_cfg = EvaluationStatistics()
        rules, database, initial = scenario_layered_tc()
        rel_cfg = seminaive_closure(
            rules, initial, Database(dict(database.relations)), stats_cfg,
            config=EvalConfig(),
        )
        assert rel_cfg.rows == rel_none.rows
        assert stats_cfg.as_dict() == stats_none.as_dict()


# ----------------------------------------------------------------------
# Executor determinism
# ----------------------------------------------------------------------


class TestExecutorDeterminism:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_three_runs_identical(self, scenario, backend):
        outcomes = []
        for _ in range(3):
            relation, statistics = run_seminaive(scenario, backend)
            canonical = repr(relation.sorted_rows()).encode()
            outcomes.append((canonical, stats_signature(statistics)))
        assert outcomes[0] == outcomes[1] == outcomes[2]


# ----------------------------------------------------------------------
# EvalConfig validation
# ----------------------------------------------------------------------


class TestEvalConfig:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            EvalConfig(executor="gpu")
        with pytest.raises(ValueError):
            EvalConfig(backend="gpu")

    @pytest.mark.parametrize("field,value", [
        ("max_workers", 0),
        ("partitions", 0),
        ("min_partition_rows", 1),
    ])
    def test_bounds_rejected(self, field, value):
        with pytest.raises(ValueError):
            EvalConfig(**{field: value})

    def test_defaults_resolve(self):
        config = EvalConfig()
        assert not config.is_parallel()
        assert config.resolved_workers() >= 1
        assert config.resolved_partitions() == config.resolved_workers()

    def test_explicit_resolution(self):
        config = EvalConfig(backend="threads", max_workers=3)
        assert config.is_parallel()
        assert config.resolved_workers() == 3
        assert config.resolved_partitions() == 3
        assert EvalConfig(max_workers=2, partitions=5).resolved_partitions() == 5


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------


class TestPartitioner:
    def test_split_relation_covers_and_disjoint(self):
        relation = Relation.of("d", 2, [(i, i + 1) for i in range(20)])
        parts = split_relation(relation, 4)
        assert 1 < len(parts) <= 4
        union = frozenset().union(*(part.rows for part in parts))
        assert union == relation.rows
        assert sum(len(part) for part in parts) == len(relation)

    def test_split_relation_small_or_single(self):
        relation = Relation.of("d", 1, [(1,)])
        assert split_relation(relation, 4) == [relation]
        assert split_relation(relation, 1) == [relation]

    def test_same_delta_rules_grouped_per_partition(self):
        plans = [
            compile_rule(parse_rule("p(X, Y) :- p(U, Y), q(X, U).")),
            compile_rule(parse_rule("p(X, Y) :- p(X, V), r(V, Y).")),
        ]
        delta = Relation.of("p", 2, [(i, i) for i in range(16)])
        tasks = partition_tasks(plans, {"p": delta}, partitions=4)
        # One task per partition, each carrying both plans.
        assert all(task.plan_indices == (0, 1) for task in tasks)
        assert 1 < len(tasks) <= 4
        covered = frozenset().union(
            *(task.overrides["p"].rows for task in tasks)
        )
        assert covered == delta.rows

    def test_nonlinear_delta_rule_is_not_partitioned(self):
        plans = [compile_rule(parse_rule("p(X, Y) :- p(X, U), p(U, Y)."))]
        delta = Relation.of("p", 2, [(i, i + 1) for i in range(16)])
        tasks = partition_tasks(plans, {"p": delta}, partitions=4)
        assert len(tasks) == 1
        assert tasks[0].partition_index == -1
        assert tasks[0].overrides["p"] is delta

    def test_small_delta_is_not_partitioned(self):
        plans = [compile_rule(parse_rule("p(X, Y) :- p(U, Y), q(X, U)."))]
        delta = Relation.of("p", 2, [(0, 0), (1, 1), (2, 2)])
        tasks = partition_tasks(plans, {"p": delta}, partitions=4,
                                min_partition_rows=8)
        assert len(tasks) == 1
        assert tasks[0].partition_index == -1

    def test_disjoint_delta_rules_form_separate_groups(self):
        plans = [
            compile_rule(parse_rule("a(X, Y) :- a(U, Y), q(X, U).")),
            compile_rule(parse_rule("b(X, Y) :- b(U, Y), q(X, U).")),
        ]
        overrides = {
            "a": Relation.of("a", 2, [(i, i) for i in range(8)]),
            "b": Relation.of("b", 2, [(i, i) for i in range(8)]),
        }
        tasks = partition_tasks(plans, overrides, partitions=2)
        groups = {task.plan_indices for task in tasks}
        assert groups == {(0,), (1,)}

    def test_rule_without_delta_runs_whole(self):
        plans = [compile_rule(parse_rule("p(X, Y) :- q(X, U), r(U, Y)."))]
        delta = Relation.of("s", 2, [(i, i) for i in range(16)])
        tasks = partition_tasks(plans, {"s": delta}, partitions=4)
        assert len(tasks) == 1
        assert tasks[0].overrides["s"] is delta


# ----------------------------------------------------------------------
# Shareability / pickling
# ----------------------------------------------------------------------


class TestShareability:
    def test_database_pickles_without_caches(self):
        edge = Relation.of("edge", 2, [(0, 1), (1, 2)])
        database = Database.of(edge)
        database.index("edge", 2, (0,))  # warm the cache
        clone = pickle.loads(pickle.dumps(database))
        assert clone.relations.keys() == database.relations.keys()
        assert clone.relation("edge", 2).rows == edge.rows
        # The clone has its own empty cache and working lock.
        assert clone.index("edge", 2, (0,)).lookup((0,)) == [(0, 1)]

    def test_evaluator_context_reusable_per_closure(self):
        rules, database, initial = scenario_layered_tc()
        plans = [compile_rule(rule, database) for rule in rules]
        config = EvalConfig(backend="threads", max_workers=2)
        with ParallelEvaluator(plans, database, config) as evaluator:
            stats = EvaluationStatistics()
            first = evaluator.execute_batch({"path": initial}, stats)
            second = evaluator.execute_batch({"path": initial}, stats)
        assert sorted(first) == sorted(second)
        assert stats.rule_applications == 2 * len(plans)
