"""Unit tests for the Datalog parser."""

import pytest

from repro.datalog.parser import parse_atom, parse_program, parse_rule, parse_term
from repro.datalog.terms import Constant, Variable
from repro.exceptions import DatalogSyntaxError


class TestTerms:
    def test_variable(self):
        assert parse_term("Xyz") == Variable("Xyz")
        assert parse_term("_tmp") == Variable("_tmp")

    def test_lowercase_constant(self):
        assert parse_term("alice") == Constant("alice")

    def test_integer_constant(self):
        assert parse_term("42") == Constant(42)
        assert parse_term("-3") == Constant(-3)

    def test_quoted_constant(self):
        assert parse_term('"Hello World"') == Constant("Hello World")
        assert parse_term("'x y'") == Constant("x y")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_term("X Y")


class TestAtoms:
    def test_basic_atom(self):
        atom = parse_atom("edge(X, b)")
        assert atom.name == "edge"
        assert atom.arguments == (Variable("X"), Constant("b"))

    def test_zero_arity_atom(self):
        assert parse_atom("done").arity == 0

    def test_infix_equality(self):
        atom = parse_atom("X = a")
        assert atom.is_equality()
        assert atom.arguments == (Variable("X"), Constant("a"))

    def test_nested_parentheses_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom("p(q(X))")


class TestRules:
    def test_fact(self):
        rule = parse_rule("edge(a, b).")
        assert rule.is_fact()
        assert rule.head.is_ground()

    def test_rule_with_body(self):
        rule = parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y).")
        assert rule.head.name == "path"
        assert [atom.name for atom in rule.body] == ["edge", "path"]

    def test_rule_with_equality_in_body(self):
        rule = parse_rule("p(X, Y) :- q(X, Z), Y = Z.")
        assert any(atom.is_equality() for atom in rule.body)

    def test_missing_period_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("p(X) :- q(X)")

    def test_missing_body_after_arrow_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("p(X) :- .")

    def test_unterminated_string_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule('p("abc).')

    def test_error_carries_location(self):
        try:
            parse_rule("p(X) :-\n  q(X& ).")
        except DatalogSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover - defensive
            pytest.fail("expected a syntax error")


class TestPrograms:
    def test_program_with_comments_and_facts(self):
        program = parse_program(
            """
            % transitive closure
            path(X, Y) :- edge(X, Z), path(Z, Y).  # recursive
            path(X, Y) :- edge(X, Y).
            edge(1, 2).
            edge(2, 3).
            """
        )
        assert len(program) == 4
        assert len(program.facts()) == 2

    def test_empty_program(self):
        assert len(parse_program("")) == 0
        assert len(parse_program("% only a comment\n")) == 0

    def test_program_roundtrip(self):
        text = "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y)."
        program = parse_program(text)
        assert parse_program(str(program)).rules == program.rules

    def test_unexpected_character(self):
        with pytest.raises(DatalogSyntaxError):
            parse_program("p(X) :- q(X) & r(X).")
