"""Differential tests: the compiled execution path vs the interpreted one.

A cached :class:`~repro.engine.plan.CompiledRule` must produce the same
emission multiset as the interpreted reference evaluator for every rule,
and the compiled semi-naive fixpoint must reproduce the seed engine's
result relation and duplicate/derivation accounting (Theorem 3.1) across
the :mod:`repro.workloads.scenarios` suite.
"""

import random
from collections import Counter

import pytest

from repro.datalog.parser import parse_program, parse_rule
from repro.engine.conjunctive import (
    evaluate_rule,
    evaluate_rule_multiset,
    evaluate_rule_multiset_interpreted,
)
from repro.engine.naive import naive_closure
from repro.engine.plan import UNBOUND, compile_rule
from repro.engine.reference import seminaive_closure_interpreted
from repro.engine.seminaive import seminaive_closure
from repro.engine.statistics import EvaluationStatistics, JoinCounters
from repro.exceptions import EvaluationError, SchemaError
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.workloads import scenarios

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _random_database(arities: dict[str, int], seed: int, domain: int = 5,
                     rows_per_relation: int = 14) -> Database:
    rng = random.Random(seed)
    relations = []
    for name, arity in sorted(arities.items()):
        rows = {
            tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(rows_per_relation)
        }
        relations.append(Relation.of(name, arity, rows))
    return Database.of(*relations)


def _body_arities(rule) -> dict[str, int]:
    return {
        atom.predicate.name: atom.predicate.arity
        for atom in rule.body
        if not atom.is_equality()
    }


SCENARIO_RULES = [
    scenarios.example_5_1_rule(),
    scenarios.figure_2_rule(),
    *scenarios.example_5_2_rules(),
    *scenarios.example_5_3_rules(),
    *scenarios.example_5_4_rules(),
    scenarios.example_6_1_rule(),
    scenarios.example_6_2_rule(),
    scenarios.example_6_3_rule(),
]

SCENARIO_PROGRAMS = {
    "path": scenarios.two_sided_transitive_closure_program(),
    "sg": scenarios.same_generation_program(),
    "reach": scenarios.separable_selection_program(),
    "buys": scenarios.redundant_buys_program(),
    "t": scenarios.noncommuting_program(),
}


# ----------------------------------------------------------------------
# Single-rule equivalence
# ----------------------------------------------------------------------


class TestCompiledMatchesInterpreted:
    @pytest.mark.parametrize("rule", SCENARIO_RULES, ids=str)
    def test_scenario_rule_emissions_identical(self, rule):
        database = _random_database(_body_arities(rule), seed=hash(str(rule)) % 1000)
        compiled_counters = JoinCounters()
        interpreted_counters = JoinCounters()
        compiled = evaluate_rule_multiset(rule, database, counters=compiled_counters)
        interpreted = evaluate_rule_multiset_interpreted(
            rule, database, counters=interpreted_counters
        )
        assert Counter(compiled) == Counter(interpreted)
        assert compiled_counters.tuples_emitted == interpreted_counters.tuples_emitted

    @pytest.mark.parametrize(
        "source",
        [
            "out(X, Y) :- edge(X, Y), X = 1.",
            "out(X) :- edge(X, Y), label(Z), Y = Z.",
            "out(X, C) :- edge(X, Y), colour(Y, C).",
            "red(X) :- colour(X, 2).",
            "diag(X) :- pair(X, X).",
            "prod(X, Y) :- label(X), label(Y).",
            "tag(X, 7) :- label(X).",
        ],
    )
    def test_feature_rules_emissions_identical(self, source):
        rule = parse_rule(source)
        arities = _body_arities(rule)
        arities.setdefault("edge", 2)
        arities.setdefault("colour", 2)
        arities.setdefault("label", 1)
        arities.setdefault("pair", 2)
        database = _random_database(arities, seed=len(source), domain=4)
        compiled = evaluate_rule_multiset(rule, database)
        interpreted = evaluate_rule_multiset_interpreted(rule, database)
        assert Counter(compiled) == Counter(interpreted)

    def test_override_matches_interpreted(self):
        rule = parse_rule("p(X, Y) :- edge(X, Z), p(Z, Y).")
        database = _random_database({"edge": 2, "p": 2}, seed=3)
        override = {"p": Relation.of("p", 2, [(0, 1), (1, 2), (3, 3)])}
        compiled = evaluate_rule_multiset(rule, database, overrides=override)
        interpreted = evaluate_rule_multiset_interpreted(
            rule, database, overrides=override
        )
        assert Counter(compiled) == Counter(interpreted)


class TestCompiledSemantics:
    def test_none_is_a_legal_bound_value(self):
        # Regression: a variable bound to None must behave as bound.  The
        # seed's _match_row used ``.get(term) is None`` as "unbound" and
        # silently rebound the variable, corrupting joins over relations
        # containing None.
        database = Database.of(
            Relation.of("p", 2, [(1, None)]),
            Relation.of("q", 2, [(None, 2), (3, 4)]),
        )
        rule = parse_rule("out(X, Z) :- p(X, Y), q(Y, Z).")
        expected = frozenset({(1, 2)})
        assert evaluate_rule(rule, database).rows == expected
        assert (
            frozenset(evaluate_rule_multiset_interpreted(rule, database)) == expected
        )

    def test_fact_rule(self):
        database = Database.of(Relation.of("edge", 2, []))
        assert evaluate_rule_multiset(parse_rule("out(1, 2)."), database) == [(1, 2)]

    def test_unsafe_rule_raises(self):
        database = Database.of(Relation.of("edge", 2, [(1, 2)]))
        with pytest.raises(EvaluationError):
            evaluate_rule_multiset(parse_rule("out(X, Y) :- edge(X, X)."), database)

    def test_wrong_arity_atom_raises_even_behind_empty_atom(self):
        # Stored relations are resolved (and arity-checked) eagerly, as
        # on the interpreted path: a schema bug raises even when an
        # earlier empty atom would short-circuit the join.
        database = Database.of(
            Relation.empty("empty", 1),
            Relation.of("q", 3, [(1, 1, 1)]),
        )
        rule = parse_rule("out(X) :- empty(X), q(X, X).")
        with pytest.raises(SchemaError):
            evaluate_rule_multiset(rule, database)
        with pytest.raises(SchemaError):
            evaluate_rule_multiset_interpreted(rule, database)

    def test_wrong_arity_atom_raises_after_cache_warm(self):
        # Regression: the index cache is keyed by arity too, so a
        # wrong-arity atom raises SchemaError (as on the interpreted
        # path) instead of silently reusing a cached index.
        database = Database.of(Relation.of("q", 2, [(1, 2)]))
        evaluate_rule_multiset(parse_rule("a(X, Y) :- q(X, Y)."), database)
        with pytest.raises(SchemaError):
            evaluate_rule_multiset(parse_rule("b(X) :- q(X)."), database)

    def test_override_arity_mismatch_raises(self):
        rule = parse_rule("out(X, Y) :- edge(X, Y).")
        database = Database.of(Relation.of("edge", 2, [(1, 2)]))
        with pytest.raises(EvaluationError):
            evaluate_rule_multiset(
                rule, database, overrides={"edge": Relation.of("edge", 3, [])}
            )

    def test_unsafe_equality_raises_only_when_reached(self):
        database = Database.of(Relation.of("edge", 2, [(1, 2)]))
        rule = parse_rule("out(X) :- empty(X), X = Y, edge(Y, W).")
        # ``empty`` has no rows, so the unsafe equality is never reached.
        hmm = evaluate_rule_multiset(
            rule, database.with_relation(Relation.empty("empty", 1))
        )
        assert hmm == []

    def test_unreached_override_is_not_indexed(self):
        # Index building is lazy: if the join short-circuits before an
        # override's step, the (per-iteration) delta is never indexed.
        rule = parse_rule("t(X, Y) :- empty(X), t(X, Y).")
        database = Database.of(Relation.empty("empty", 1))

        class ExplodingOverride:
            """Duck-typed relation that fails if anything indexes it."""
            name = "t"
            arity = 2

            @property
            def rows(self):
                raise AssertionError("unreached override was indexed")

        plan = compile_rule(rule, database)
        # The first scan (empty) yields nothing, so the override's step
        # is never reached and its relation is never indexed.
        assert plan.execute(database, {"t": ExplodingOverride()}) == []

    def test_counters_match_interpreted_emission_count(self):
        rule = parse_rule("two(X, Z) :- edge(X, Y), edge(Y, Z).")
        database = _random_database({"edge": 2}, seed=9)
        counters = JoinCounters()
        emissions = evaluate_rule_multiset(rule, database, counters=counters)
        assert counters.tuples_emitted == len(emissions)
        assert counters.rows_probed >= counters.tuples_emitted


class TestPlanCache:
    def test_plan_is_reused(self):
        rule = parse_rule("p(X, Y) :- edge(X, Z), p(Z, Y).")
        database = _random_database({"edge": 2}, seed=1)
        assert compile_rule(rule, database) is compile_rule(rule, database)

    def test_cached_plan_is_correct_on_a_different_database(self):
        rule = parse_rule("p(X, Y) :- edge(X, Z), p(Z, Y).")
        first = _random_database({"edge": 2, "p": 2}, seed=1)
        second = _random_database({"edge": 2, "p": 2}, seed=2, domain=7)
        compile_rule(rule, first)  # seed the cache against `first`
        compiled = evaluate_rule_multiset(rule, second)
        interpreted = evaluate_rule_multiset_interpreted(rule, second)
        assert Counter(compiled) == Counter(interpreted)

    def test_unbound_sentinel_is_not_none(self):
        assert UNBOUND is not None


# ----------------------------------------------------------------------
# Fixpoint equivalence over the scenario programs
# ----------------------------------------------------------------------


class TestSeminaiveEquivalence:
    @pytest.mark.parametrize("predicate_name", sorted(SCENARIO_PROGRAMS), ids=str)
    def test_compiled_seminaive_matches_seed_engine(self, predicate_name):
        program = SCENARIO_PROGRAMS[predicate_name]
        recursion = None
        for predicate in program.predicates:
            if predicate.name == predicate_name and program.rules_for(predicate):
                recursion = program.linear_recursion_of(predicate)
        assert recursion is not None

        edb_arities = {
            atom.predicate.name: atom.predicate.arity
            for rule in program
            for atom in rule.body
            if atom.predicate.name != predicate_name and not atom.is_equality()
        }
        database = _random_database(edb_arities, seed=len(predicate_name) * 7,
                                    domain=6, rows_per_relation=16)

        exit_rows = frozenset()
        for rule in recursion.exit_rules:
            exit_rows |= evaluate_rule(rule, database).rows
        initial = Relation(predicate_name, recursion.arity, exit_rows)

        reference_stats = EvaluationStatistics()
        reference = seminaive_closure_interpreted(
            recursion.recursive_rules, initial, database, reference_stats
        )
        compiled_stats = EvaluationStatistics()
        compiled = seminaive_closure(
            recursion.recursive_rules, initial, database, compiled_stats
        )

        assert compiled.rows == reference.rows
        assert compiled_stats.derivations == reference_stats.derivations
        assert compiled_stats.duplicates == reference_stats.duplicates
        assert compiled_stats.iterations == reference_stats.iterations
        assert compiled_stats.result_size == reference_stats.result_size

    def test_head_arity_mismatch_raises_up_front(self):
        # Regression: with RowSetBuilder accumulation the per-iteration
        # Relation constructor no longer re-validates row widths, so the
        # drivers must reject a head whose name matches the recursive
        # predicate but whose arity does not.
        rules = (parse_rule("t(X, Y, Z) :- e(X, Y, Z)."),)
        database = Database.of(Relation.of("e", 3, [(1, 2, 3)]))
        initial = Relation.of("t", 2, [(1, 2)])
        with pytest.raises(EvaluationError):
            seminaive_closure(rules, initial, database)
        with pytest.raises(EvaluationError):
            naive_closure(rules, initial, database)
