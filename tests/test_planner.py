"""Tests for the cost-based/adaptive planner (`repro.planner`).

The load-bearing property is *bit-identical semantics*: every planner
mode must produce the same result relation, the same Theorem-3.1
derivation/duplicate counts and the same cross-backend join-counter
signature as the greedy baseline — join order is a performance choice,
never a semantic one.  On top of that the skewed `rulegen` families
assert the performance ordering the planner exists for: costed beats
greedy where cold statistics suffice, adaptive beats both where only
the live frontier reveals the skew.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.datalog.parser import parse_rule
from repro.engine.parallel import PLANNERS, EvalConfig
from repro.engine.plan import clear_plan_cache, greedy_body_order
from repro.engine.seminaive import seminaive_closure
from repro.engine.naive import naive_closure
from repro.engine.statistics import EvaluationStatistics
from repro.planner import (
    ProfileSource,
    RelationProfile,
    costed_body_order,
    estimate_order,
    explain_program,
    plan_program,
    planner_catalog,
    step_matches,
)
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.workloads.rulegen import hub_drift_program, skewed_filter_program


@pytest.fixture(autouse=True)
def fresh_catalog():
    """The warm catalog and plan cache are process-global; the same Rule
    value appears here over databases of different sizes (greedy's order
    depends on sizes seen at first compile), so isolate every test."""
    planner_catalog().clear()
    clear_plan_cache()
    yield
    planner_catalog().clear()
    clear_plan_cache()


def chain_db(length=6):
    return Database.of(Relation.of("edge", 2, [(i, i + 1) for i in range(length)]))


TC_RULE = parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y).")
IDENTITY = Relation.of("path", 2, [(i, i) for i in range(7)])


def signature(rows, statistics):
    """The cross-mode invariant: results + Theorem-3.1 accounting."""
    return (
        frozenset(rows),
        statistics.derivations,
        statistics.duplicates,
        statistics.iterations,
    )


def counters(statistics):
    """The within-mode, cross-backend invariant: low-level join work."""
    joins = statistics.joins
    return (joins.rows_probed, joins.bindings_extended, joins.tuples_emitted)


class TestCostModel:
    def test_profile_is_exact(self):
        relation = Relation.of("r", 2, [(1, 1), (1, 2), (2, 2)])
        profile = RelationProfile.of(relation)
        assert profile.size == 3
        assert profile.distinct == (2, 2)

    def test_assumed_profile_is_all_distinct(self):
        profile = RelationProfile.assumed(10, 3)
        assert profile.size == 10
        assert profile.distinct == (10, 10, 10)

    def test_step_matches_divides_by_bound_distincts(self):
        db = Database.of(Relation.of("r", 2, [(i % 2, i) for i in range(8)]))
        profiles = ProfileSource(db)
        atom = parse_rule("h(X) :- r(X, Y).").body[0]
        x, _ = atom.arguments
        # Unbound: the whole relation matches.
        assert step_matches(atom, (), profiles) == 8.0
        # X bound: 8 rows / 2 distinct first-column values.
        assert step_matches(atom, (x,), profiles) == 4.0

    def test_unknown_predicate_profiles_empty(self):
        profiles = ProfileSource(Database({}))
        assert profiles.profile("nowhere", 2).size == 0

    def test_hints_override_database(self):
        db = Database.of(Relation.of("r", 2, [(1, 2)]))
        profiles = ProfileSource(db, hints={"r": 99})
        assert profiles.profile("r", 2).size == 99

    def test_equality_atoms_are_free(self):
        rule = parse_rule("h(X, Y) :- r(X, Y), X = Y.")
        db = Database.of(Relation.of("r", 2, [(1, 1), (2, 2)]))
        profiles = ProfileSource(db)
        bare = estimate_order(rule.body, (0,), profiles)
        woven = estimate_order(rule.body, (0, 1), profiles)
        assert woven.cost == bare.cost

    def test_estimate_is_deterministic(self):
        rules, database, initial = skewed_filter_program(chain=8, sel_padding=50)
        profiles = ProfileSource(database, hints={initial.name: 1})
        first = costed_body_order(rules[0], profiles, lead_name=initial.name)
        second = costed_body_order(rules[0], profiles, lead_name=initial.name)
        assert first == second


class TestCostedSearch:
    def test_picks_selective_atom_despite_size(self):
        # greedy's size tie-break scans the small-but-fat `blow` first;
        # the cost model sees `sel`'s matches-per-probe and flips them.
        rules, database, initial = skewed_filter_program()
        rule = rules[0]
        greedy = greedy_body_order(rule.body, database, {initial.name: initial})
        profiles = ProfileSource(database, hints={initial.name: len(initial)})
        order, estimate, _ = costed_body_order(rule, profiles,
                                               lead_name=initial.name)
        assert greedy == (0, 1, 2)          # p, blow, sel
        assert order == (0, 2, 1)           # p, sel, blow
        assert estimate.cost > 0

    def test_order_is_a_permutation_with_recursive_lead(self):
        rules, database, initial = hub_drift_program()
        profiles = ProfileSource(database, hints={initial.name: 1})
        order, _, _ = costed_body_order(rules[0], profiles,
                                        lead_name=initial.name)
        assert sorted(order) == list(range(len(rules[0].body)))
        assert order[0] == 0                # the p(X, Z) scan leads

    def test_equalities_woven_after_a_side_is_bound(self):
        rule = parse_rule("h(X, Y) :- a(X), Y = X, b(Y).")
        db = Database.of(
            Relation.of("a", 1, [(1,)]),
            Relation.of("b", 1, [(1,), (2,)]),
        )
        order, _, _ = costed_body_order(rule, ProfileSource(db))
        # The equality must appear after a(X) binds X, before/after b.
        assert set(order) == {0, 1, 2}
        assert order.index(1) > order.index(0)


class TestCatalog:
    def test_observe_keeps_the_cheaper_order(self):
        catalog = planner_catalog()
        catalog.observe(TC_RULE, (0, 1), 10.0)
        catalog.observe(TC_RULE, (1, 0), 3.0)
        catalog.observe(TC_RULE, (0, 1), 8.0)   # worse: ignored
        suggestion = catalog.suggest(TC_RULE)
        assert suggestion.order == (1, 0)
        assert suggestion.measured_cost == 3.0

    def test_same_order_accumulates_runs_and_minimum(self):
        catalog = planner_catalog()
        catalog.observe(TC_RULE, (0, 1), 10.0)
        catalog.observe(TC_RULE, (0, 1), 4.0)
        suggestion = catalog.suggest(TC_RULE)
        assert suggestion.runs == 2
        assert suggestion.measured_cost == 4.0

    def test_clear_forgets(self):
        catalog = planner_catalog()
        catalog.observe(TC_RULE, (0, 1), 1.0)
        catalog.clear()
        assert catalog.suggest(TC_RULE) is None
        assert len(catalog) == 0

    def test_costed_run_warms_the_catalog(self):
        stats = EvaluationStatistics()
        seminaive_closure((TC_RULE,), IDENTITY, chain_db(), stats,
                          config=EvalConfig(planner="costed"))
        assert planner_catalog().suggest(TC_RULE) is not None
        # A second run plans from the warm observation.
        warm_stats = EvaluationStatistics()
        seminaive_closure((TC_RULE,), IDENTITY, chain_db(), warm_stats,
                          config=EvalConfig(planner="costed"))
        assert warm_stats.planner.rules[0].source == "warm"


class TestEvalConfigKnob:
    def test_spec_round_trip(self):
        for spec in ("rows-costed", "interned-adaptive",
                     "batch-threads-costed"):
            config = EvalConfig.from_spec(spec)
            assert EvalConfig.from_spec(config.spec()) == config
        assert EvalConfig.from_spec("interned-costed").planner == "costed"
        assert EvalConfig.from_spec("rows").planner == "greedy"

    def test_greedy_is_spec_default_and_unspelled(self):
        assert "greedy" not in EvalConfig().spec()

    def test_unknown_planner_rejected(self):
        with pytest.raises(ValueError):
            EvalConfig(planner="exhaustive")
        with pytest.raises(ValueError):
            EvalConfig.from_spec("rows-exhaustive")

    def test_replan_ratio_must_exceed_one(self):
        with pytest.raises(ValueError):
            EvalConfig(replan_ratio=1.0)


class TestPlanProgram:
    def test_greedy_reports_orders(self):
        stats = EvaluationStatistics()
        session = plan_program((TC_RULE,), chain_db(), None, stats, IDENTITY)
        assert stats.planner.mode == "greedy"
        assert stats.planner.rules[0].source == "greedy"
        assert sorted(stats.planner.rules[0].order) == [0, 1]
        assert not session.plans[0].forced

    def test_costed_reports_estimates_and_forces_plans(self):
        rules, database, initial = skewed_filter_program()
        stats = EvaluationStatistics()
        session = plan_program(rules, database,
                               EvalConfig(planner="costed"), stats, initial)
        info = stats.planner.rules[0]
        assert info.source == "cold"
        assert info.order == (0, 2, 1)
        assert info.estimated_cost is not None
        assert session.plans[0].forced
        assert session.plans[0].order == (0, 2, 1)

    def test_commuting_pair_is_noted(self, tc_rules):
        database = Database.of(
            Relation.of("q", 2, [(0, 1)]),
            Relation.of("r", 2, [(1, 2)]),
        )
        stats = EvaluationStatistics()
        plan_program(tc_rules, database, EvalConfig(planner="costed"),
                     stats, Relation.of("p", 2, [(0, 0)]))
        assert any("commute" in note for note in stats.planner.notes)


SPECS = ("rows", "batch", "interned", "rows-threads", "batch-threads",
         "interned-threads", "rows-processes", "interned-processes")


class TestParity:
    """Planner modes are invisible in results and Theorem-3.1 counts."""

    def _solve(self, workload, mode, spec, driver=seminaive_closure):
        rules, database, initial = workload
        config = dataclasses.replace(
            EvalConfig.from_spec(spec), planner=mode, max_workers=2,
        )
        planner_catalog().clear()
        clear_plan_cache()
        stats = EvaluationStatistics()
        rows = driver(rules, initial, database, stats, config=config).rows
        return signature(rows, stats), counters(stats), stats

    @pytest.mark.parametrize("spec", SPECS)
    def test_modes_agree_on_skewed_filter(self, spec):
        workload = skewed_filter_program(chain=8, sel_padding=40)
        reference, _, _ = self._solve(workload, "greedy", spec)
        for mode in ("costed", "adaptive"):
            observed, _, _ = self._solve(workload, mode, spec)
            assert observed == reference, (mode, spec)

    @pytest.mark.parametrize("mode", PLANNERS)
    def test_backends_share_counters_within_mode(self, mode):
        workload = hub_drift_program(chain=10, hot_start=3, hot_fanout=6,
                                     alt_fanout=2, padding=50)
        reference = None
        baseline = None
        for spec in SPECS:
            observed, work, _ = self._solve(workload, mode, spec)
            if reference is None:
                reference, baseline = observed, work
            assert observed == reference, (mode, spec)
            assert work == baseline, (mode, spec)

    @pytest.mark.parametrize("mode", PLANNERS)
    def test_naive_driver_agrees(self, mode):
        workload = skewed_filter_program(chain=6, sel_padding=30)
        reference, _, _ = self._solve(workload, "greedy", "rows",
                                      driver=naive_closure)
        observed, _, _ = self._solve(workload, mode, "rows",
                                     driver=naive_closure)
        assert observed == reference

    def test_tc_chain_all_modes_all_specs(self):
        db = chain_db()
        reference = None
        for mode in PLANNERS:
            for spec in ("rows", "interned", "interned-processes"):
                config = dataclasses.replace(
                    EvalConfig.from_spec(spec), planner=mode, max_workers=2,
                )
                planner_catalog().clear()
                stats = EvaluationStatistics()
                rows = seminaive_closure((TC_RULE,), IDENTITY, db, stats,
                                         config=config).rows
                observed = signature(rows, stats)
                reference = reference if reference is not None else observed
                assert observed == reference, (mode, spec)


class TestPlannerWins:
    """The skewed families the planner exists for (bench floors)."""

    def _probes(self, workload, mode, spec="rows"):
        _, work, stats = TestParity()._solve(workload, mode, spec)
        return work[0], stats

    @pytest.mark.parametrize("spec", ("rows", "interned-processes"))
    def test_costed_beats_greedy_on_skewed_filter(self, spec):
        workload = skewed_filter_program()
        greedy, _ = self._probes(workload, "greedy", spec)
        costed, stats = self._probes(workload, "costed", spec)
        assert costed < greedy
        assert stats.planner.rules[0].source == "cold"

    @pytest.mark.parametrize("spec", ("rows", "interned-processes"))
    def test_adaptive_beats_costed_on_hub_drift(self, spec):
        workload = hub_drift_program()
        greedy, _ = self._probes(workload, "greedy", spec)
        costed, _ = self._probes(workload, "costed", spec)
        adaptive, stats = self._probes(workload, "adaptive", spec)
        assert adaptive < min(greedy, costed)
        report = stats.planner
        assert report.replans, "expected at least one mid-fixpoint replan"
        event = report.replans[0]
        assert event.iteration >= 1
        assert event.rule_index == 0
        assert event.old_order != event.new_order
        assert event.delta_ratio > 0
        assert report.replan_checks >= len(report.replans)

    def test_adaptive_replans_recorded_in_explain(self):
        rules, database, initial = hub_drift_program()
        text = explain_program(rules, database,
                               EvalConfig(planner="adaptive"),
                               initial=initial)
        assert "planner: adaptive" in text
        assert "re-cost when delta/total drifts" in text

    def test_report_actuals_populated(self):
        workload = skewed_filter_program(chain=8, sel_padding=40)
        _, stats = self._probes(workload, "costed")
        actual = stats.planner.actual
        assert actual["derivations"] == stats.derivations
        assert actual["rows_probed"] == stats.joins.rows_probed
        assert stats.planner.trajectory
