"""Tests for the planner, the end-to-end engine, and the analyzer."""

import pytest

from repro.core.analysis import RecursionAnalyzer
from repro.core.decomposition import partition_commuting, verify_star_decomposition
from repro.core.engine import RecursiveQueryEngine
from repro.core.planner import QueryPlanner, Strategy
from repro.datalog.atoms import Predicate
from repro.datalog.parser import parse_program, parse_rule
from repro.exceptions import AnalysisError
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.selection import EqualitySelection
from repro.workloads import scenarios


def two_sided_db():
    return Database.of(
        Relation.of("edge", 2, [(0, 1), (1, 2), (2, 3)]),
        Relation.of("hop", 2, [(2, 4), (3, 4), (4, 5)]),
        Relation.of("base", 2, [(i, i) for i in range(6)]),
    )


class TestPartitioning:
    def test_commuting_rules_split_into_singletons(self, path_rules):
        groups = partition_commuting(path_rules)
        assert len(groups) == 2

    def test_noncommuting_rules_stay_together(self):
        first = parse_rule("t(X, Y) :- a(X, U), t(U, Y).")
        second = parse_rule("t(X, Y) :- b(X, U), t(U, Y).")
        groups = partition_commuting((first, second))
        assert len(groups) == 1

    def test_mixed_partition(self, path_rules):
        third = parse_rule("path(X, Y) :- extra(X, U), path(U, Y).")
        groups = partition_commuting((*path_rules, third))
        sizes = sorted(len(group) for group in groups)
        assert sizes == [1, 2]

    def test_verify_star_decomposition(self, path_rules, chain_database, identity_initial):
        groups = partition_commuting(path_rules)
        assert verify_star_decomposition(groups, identity_initial, chain_database)


class TestPlanner:
    def test_decomposed_plan_for_commuting_rules(self):
        program = scenarios.two_sided_transitive_closure_program()
        recursion = program.linear_recursion_of(Predicate("path", 2))
        plan = QueryPlanner().plan(recursion)
        assert plan.strategy == Strategy.DECOMPOSED
        assert len(plan.groups) == 2
        assert "commute" in plan.explain()

    def test_direct_plan_for_noncommuting_rules(self):
        program = scenarios.noncommuting_program()
        recursion = program.linear_recursion_of(Predicate("t", 2))
        plan = QueryPlanner().plan(recursion)
        assert plan.strategy == Strategy.DIRECT

    def test_separable_plan_with_selection(self):
        program = scenarios.separable_selection_program()
        recursion = program.linear_recursion_of(Predicate("reach", 2))
        plan = QueryPlanner().plan(recursion, EqualitySelection(0, 0))
        assert plan.strategy == Strategy.SEPARABLE
        assert plan.separable is not None

    def test_redundancy_plan_for_single_rule(self):
        program = scenarios.redundant_buys_program()
        recursion = program.linear_recursion_of(Predicate("buys", 2))
        plan = QueryPlanner().plan(recursion)
        assert plan.strategy == Strategy.REDUNDANCY_AWARE
        assert plan.factorization is not None

    def test_feature_switches(self):
        program = scenarios.two_sided_transitive_closure_program()
        recursion = program.linear_recursion_of(Predicate("path", 2))
        plan = QueryPlanner(allow_decomposition=False).plan(recursion)
        assert plan.strategy == Strategy.DIRECT

        buys = scenarios.redundant_buys_program().linear_recursion_of(Predicate("buys", 2))
        assert QueryPlanner(allow_redundancy=False).plan(buys).strategy == Strategy.DIRECT

    def test_plan_rules_subset(self):
        program = scenarios.two_sided_transitive_closure_program()
        recursion = program.linear_recursion_of(Predicate("path", 2))
        subset_plan = QueryPlanner().plan_rules(recursion.recursive_rules[:1], recursion)
        assert subset_plan.strategy == Strategy.DIRECT


class TestEngine:
    def test_query_matches_baseline(self):
        engine = RecursiveQueryEngine()
        program = scenarios.two_sided_transitive_closure_program()
        database = two_sided_db()
        planned = engine.query(program, "path", database)
        direct = engine.baseline(program, "path", database)
        assert planned.relation.rows == direct.relation.rows
        assert planned.plan.strategy == Strategy.DECOMPOSED
        assert planned.statistics.result_size == len(planned.relation)

    def test_query_accepts_source_text_and_facts(self):
        engine = RecursiveQueryEngine()
        text = """
            path(X, Y) :- edge(X, Z), path(Z, Y).
            path(X, Y) :- edge(X, Y).
            edge(1, 2).
            edge(2, 3).
        """
        result = engine.query(text, "path")
        assert result.relation.rows == frozenset({(1, 2), (2, 3), (1, 3)})

    def test_query_with_selection(self):
        engine = RecursiveQueryEngine()
        program = scenarios.separable_selection_program()
        database = Database.of(
            Relation.of("left", 2, [(0, 1), (1, 2)]),
            Relation.of("right", 2, [(2, 3)]),
            Relation.of("start", 2, [(i, i) for i in range(4)]),
        )
        selection = EqualitySelection(0, 0)
        planned = engine.query(program, "reach", database, selection=selection)
        direct = engine.baseline(program, "reach", database, selection=selection)
        assert planned.relation.rows == direct.relation.rows
        assert all(row[0] == 0 for row in planned.relation.rows)

    def test_explicit_initial_relation(self):
        engine = RecursiveQueryEngine()
        program = scenarios.two_sided_transitive_closure_program()
        database = two_sided_db()
        initial = Relation.of("seed", 2, [(2, 2)])
        result = engine.query(program, "path", database, initial=initial)
        assert (0, 5) in result.relation

    def test_unknown_predicate_rejected(self):
        engine = RecursiveQueryEngine()
        with pytest.raises(AnalysisError):
            engine.query("p(X) :- q(X).", "zzz", Database({}))

    def test_redundancy_plan_execution_matches_direct(self):
        engine = RecursiveQueryEngine()
        program = scenarios.redundant_buys_program()
        database = Database.of(
            Relation.of("knows", 2, [(i, i + 1) for i in range(6)]),
            Relation.of("cheap", 1, [(i,) for i in range(0, 7, 2)]),
            Relation.of("likes", 2, [(i, i) for i in range(7)]),
        )
        planned = engine.query(program, "buys", database)
        direct = engine.baseline(program, "buys", database)
        assert planned.plan.strategy == Strategy.REDUNDANCY_AWARE
        assert planned.relation.rows == direct.relation.rows

    def test_result_len_and_explain(self):
        engine = RecursiveQueryEngine()
        result = engine.query("p(X) :- q(X), p(X).\np(X) :- base(X).\nbase(1).", "p")
        assert len(result) == 1
        assert "strategy" in result.explain()


class TestAnalyzer:
    def test_report_covers_pairs_and_plan(self):
        program = scenarios.two_sided_transitive_closure_program()
        recursion = program.linear_recursion_of(Predicate("path", 2))
        report = RecursionAnalyzer().analyze(recursion)
        assert len(report.pairs) == 1
        assert report.pairs[0].commute
        assert report.plan is not None and report.plan.strategy == Strategy.DECOMPOSED
        text = report.render()
        assert "a-graph" in text and "pairwise analysis" in text

    def test_report_detects_redundancy(self):
        program = scenarios.redundant_buys_program()
        recursion = program.linear_recursion_of(Predicate("buys", 2))
        report = RecursionAnalyzer().analyze(recursion)
        assert any(findings for findings in report.redundancies.values())
        assert "recursively redundant" in report.render()
