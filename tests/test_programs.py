"""Unit tests for repro.datalog.programs."""

import pytest

from repro.datalog.atoms import Predicate
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.programs import LinearRecursion, Program
from repro.exceptions import RuleStructureError

TC_PROGRAM = """
    path(X, Y) :- edge(X, Z), path(Z, Y).
    path(X, Y) :- path(X, Z), hop(Z, Y).
    path(X, Y) :- edge(X, Y).
    edge(1, 2).
"""


class TestPredicateClassification:
    def test_idb_and_edb(self):
        program = parse_program(TC_PROGRAM)
        assert Predicate("path", 2) in program.idb_predicates
        assert Predicate("edge", 2) in program.edb_predicates
        assert Predicate("hop", 2) in program.edb_predicates

    def test_facts_and_proper_rules(self):
        program = parse_program(TC_PROGRAM)
        assert len(program.facts()) == 1
        assert len(program.proper_rules()) == 3

    def test_rules_for(self):
        program = parse_program(TC_PROGRAM)
        assert len(program.rules_for(Predicate("path", 2))) == 3
        assert program.rules_for(Predicate("missing", 1)) == ()

    def test_all_predicates(self):
        program = parse_program(TC_PROGRAM)
        names = {predicate.name for predicate in program.predicates}
        assert names == {"path", "edge", "hop"}

    def test_program_concatenation(self):
        first = parse_program("p(X) :- q(X).")
        second = parse_program("q(a).")
        assert len(first + second) == 2


class TestDependencyAnalysis:
    def test_depends_on_self(self):
        program = parse_program(TC_PROGRAM)
        assert program.is_recursive_predicate(Predicate("path", 2))
        assert not program.is_recursive_predicate(Predicate("edge", 2))

    def test_recursive_predicates(self):
        program = parse_program(TC_PROGRAM)
        assert program.recursive_predicates() == frozenset({Predicate("path", 2)})

    def test_transitive_dependency(self):
        program = parse_program(
            """
            a(X) :- b(X).
            b(X) :- c(X).
            """
        )
        assert program.depends_on(Predicate("a", 1), Predicate("c", 1))
        assert not program.depends_on(Predicate("c", 1), Predicate("a", 1))

    def test_linear_in(self):
        program = parse_program(TC_PROGRAM)
        assert program.is_linear_in(Predicate("path", 2))

    def test_nonlinear_detected(self):
        program = parse_program("p(X, Y) :- p(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).")
        assert not program.is_linear_in(Predicate("p", 2))

    def test_mutual_recursion_counts_as_nonlinear(self):
        program = parse_program(
            """
            p(X) :- q(X).
            q(X) :- p(X).
            """
        )
        assert not program.is_linear_in(Predicate("p", 1))


class TestLinearRecursionExtraction:
    def test_extraction_splits_rules(self):
        program = parse_program(TC_PROGRAM)
        recursion = program.linear_recursion_of(Predicate("path", 2))
        assert recursion.operator_count() == 2
        assert len(recursion.exit_rules) == 1
        assert recursion.arity == 2

    def test_unknown_predicate_rejected(self):
        program = parse_program(TC_PROGRAM)
        with pytest.raises(RuleStructureError):
            program.linear_recursion_of(Predicate("unknown", 2))

    def test_nonlinear_recursion_rejected(self):
        program = parse_program("p(X, Y) :- p(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).")
        with pytest.raises(RuleStructureError):
            program.linear_recursion_of(Predicate("p", 2))

    def test_linear_recursion_validation(self):
        recursive = parse_rule("p(X) :- q(X), p(X).")
        exit_rule = parse_rule("p(X) :- base(X).")
        recursion = LinearRecursion(Predicate("p", 1), (recursive,), (exit_rule,))
        assert recursion.operator_count() == 1
        with pytest.raises(RuleStructureError):
            LinearRecursion(Predicate("p", 1), (exit_rule,), ())
        with pytest.raises(RuleStructureError):
            LinearRecursion(Predicate("p", 1), (recursive,), (recursive,))

    def test_str_contains_all_rules(self):
        program = parse_program(TC_PROGRAM)
        recursion = program.linear_recursion_of(Predicate("path", 2))
        assert str(recursion).count(":-") == 3
