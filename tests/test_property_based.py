"""Property-based tests (hypothesis) for core invariants.

The strategies generate random small graphs, relations, and rules of the
restricted class, and check the library's structural invariants:

* semi-naive, naive, and operator-closure evaluation agree;
* the closure is a fixpoint containing the initial relation;
* Theorem 3.1: decomposition of a commuting pair never adds duplicates
  and never changes the answer;
* Theorem 5.2: on the restricted class the syntactic condition agrees
  with the definition-based commutativity test;
* Theorem 6.2: separable pairs always commute;
* formula (3.1) holds for arbitrary pairs;
* rule composition is associative up to equivalence, and containment is
  transitive.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.commutativity import commute_by_definition, sufficient_condition
from repro.core.decomposition import check_formula_3_1
from repro.core.separability import is_separable
from repro.cq.containment import is_contained_in, is_equivalent
from repro.datalog.composition import compose
from repro.datalog.normalize import standardize_many
from repro.datalog.parser import parse_rule
from repro.engine.decomposed import decomposed_closure
from repro.engine.naive import naive_closure
from repro.engine.seminaive import seminaive_closure
from repro.engine.statistics import EvaluationStatistics
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.workloads.rulegen import random_commuting_pair, random_restricted_rule, random_rule_pair

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

edges_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=25
)
seeds_strategy = st.integers(0, 10_000)

PREPEND = parse_rule("path(X, Y) :- edge(X, U), path(U, Y).")
APPEND = parse_rule("path(X, Y) :- path(X, V), hop(V, Y).")


def _database(edge_rows, hop_rows):
    return Database.of(
        Relation.of("edge", 2, edge_rows), Relation.of("hop", 2, hop_rows)
    )


def _identity(*row_sets):
    nodes = {value for rows in row_sets for row in rows for value in row} or {0}
    return Relation.of("path", 2, [(node, node) for node in nodes])


class TestEvaluationInvariants:
    @SETTINGS
    @given(edges_strategy)
    def test_naive_and_seminaive_agree(self, edge_rows):
        database = _database(edge_rows, [])
        initial = _identity(edge_rows)
        semi = seminaive_closure((PREPEND,), initial, database)
        naive = naive_closure((PREPEND,), initial, database)
        assert semi.rows == naive.rows

    @SETTINGS
    @given(edges_strategy)
    def test_closure_is_a_fixpoint_containing_initial(self, edge_rows):
        database = _database(edge_rows, [])
        initial = _identity(edge_rows)
        closure = seminaive_closure((PREPEND,), initial, database)
        assert initial.rows <= closure.rows
        again = seminaive_closure((PREPEND,), closure, database)
        assert again.rows == closure.rows

    @SETTINGS
    @given(edges_strategy, edges_strategy)
    def test_theorem_3_1_on_random_graphs(self, edge_rows, hop_rows):
        database = _database(edge_rows, hop_rows)
        initial = _identity(edge_rows, hop_rows)
        direct_stats = EvaluationStatistics()
        direct = seminaive_closure((PREPEND, APPEND), initial, database, direct_stats)
        decomposed_stats = EvaluationStatistics()
        decomposed = decomposed_closure(
            [(PREPEND,), (APPEND,)], initial, database, decomposed_stats
        )
        assert direct.rows == decomposed.rows
        assert decomposed_stats.duplicates <= direct_stats.duplicates

    @SETTINGS
    @given(edges_strategy, edges_strategy)
    def test_formula_3_1_on_random_graphs(self, edge_rows, hop_rows):
        database = _database(edge_rows, hop_rows)
        initial = _identity(edge_rows, hop_rows)
        assert check_formula_3_1(PREPEND, APPEND, initial, database)

    @SETTINGS
    @given(edges_strategy)
    def test_closure_monotone_in_the_initial_relation(self, edge_rows):
        database = _database(edge_rows, [])
        initial = _identity(edge_rows)
        smaller_rows = sorted(initial.rows)[: len(initial.rows) // 2]
        smaller = Relation.of("path", 2, smaller_rows)
        assert seminaive_closure((PREPEND,), smaller, database).rows <= seminaive_closure(
            (PREPEND,), initial, database
        ).rows


class TestRuleInvariants:
    @SETTINGS
    @given(seeds_strategy)
    def test_restricted_class_condition_is_exact(self, seed):
        rng = random.Random(seed)
        if seed % 2 == 0:
            first, second = random_commuting_pair(3, rng)
        else:
            first, second = random_rule_pair(3, 2, rng)
        report = sufficient_condition(first, second)
        if report.exact:
            assert report.satisfied == commute_by_definition(first, second)
        elif report.satisfied:
            assert commute_by_definition(first, second)

    @SETTINGS
    @given(seeds_strategy)
    def test_separable_implies_commutative(self, seed):
        rng = random.Random(seed)
        first, second = random_commuting_pair(3, rng)
        if is_separable(first, second).separable:
            assert commute_by_definition(first, second)

    @SETTINGS
    @given(seeds_strategy)
    def test_composition_is_associative_up_to_equivalence(self, seed):
        rng = random.Random(seed)
        rules = standardize_many([
            random_restricted_rule(3, 2, rng, predicate_prefix=prefix)
            for prefix in ("a", "b", "c")
        ])
        left = compose(compose(rules[0], rules[1]), rules[2])
        right = compose(rules[0], compose(rules[1], rules[2]))
        assert is_equivalent(left, right)

    @SETTINGS
    @given(seeds_strategy)
    def test_containment_is_transitive_on_generated_rules(self, seed):
        rng = random.Random(seed)
        base = random_restricted_rule(3, 2, rng)
        # Adding conjuncts can only shrink the result.
        middle = parse_rule(str(base)[:-1] + ", extra0(X0).")
        tight = parse_rule(str(middle)[:-1] + ", extra1(X1).")
        assert is_contained_in(middle, base)
        assert is_contained_in(tight, middle)
        assert is_contained_in(tight, base)

    @SETTINGS
    @given(seeds_strategy)
    def test_commuting_generator_satisfies_condition(self, seed):
        rng = random.Random(seed)
        first, second = random_commuting_pair(4, rng)
        assert sufficient_condition(first, second).satisfied

    @SETTINGS
    @given(seeds_strategy)
    def test_self_commutativity(self, seed):
        rng = random.Random(seed)
        rule = random_restricted_rule(3, 2, rng)
        assert commute_by_definition(rule, rule)
