"""Tests for the query subsystem: Query, magic sets, labels, QueryEngine.

The central invariant, asserted many ways: every answering tier (EDB
filter, reachability labels, magic-sets demand rewrite, full closure)
returns **bit-identical** answers, on every executor × backend
combination.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Query, QueryEngine, answer, solve
from repro.datalog.atoms import Predicate
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.programs import LinearRecursion
from repro.datalog.terms import Constant, Variable
from repro.engine.parallel import EvalConfig
from repro.engine.seminaive import seminaive_closure
from repro.exceptions import (
    DatalogSyntaxError,
    NotApplicableError,
    RuleStructureError,
    SchemaError,
)
from repro.query import (
    MagicProgram,
    QueryAnswer,
    ReachabilityLabels,
    build_labels,
    magic_rewrite,
    stable_bound_positions,
    transitive_closure_edge,
)
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.workloads.graphs import (
    cycle_edges,
    layered_dag_edges,
    random_graph_edges,
    tree_edges,
)
from repro.workloads.rulegen import random_restricted_rule

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TC_LEFT = (
    "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
    "path(X, Y) :- edge(X, Y)."
)
TC_RIGHT = (
    "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
    "path(X, Y) :- edge(X, Y)."
)

#: Every executor × backend combination (the serial modes plus one
#: parallel config per backend; interned-processes exercises the
#: shared-memory packed path).
ALL_CONFIGS = [
    None,
    EvalConfig.from_spec("rows"),
    EvalConfig.from_spec("batch"),
    EvalConfig.from_spec("interned"),
    EvalConfig.from_spec("rows-threads"),
    EvalConfig.from_spec("batch-threads"),
    EvalConfig.from_spec("rows-processes"),
    EvalConfig.from_spec("interned-processes"),
]
#: The cheap subset for property sweeps (no pool startup per example).
SERIAL_CONFIGS = [None, EvalConfig.from_spec("batch"),
                  EvalConfig.from_spec("interned")]


def tc_engine(edges, program: str = TC_LEFT, config=None) -> QueryEngine:
    database = Database.of(Relation.of("edge", 2, edges))
    return QueryEngine(database, program, config=config)


CYCLIC_EDGES = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "b"),
                ("d", "e"), ("f", "f")]


# ----------------------------------------------------------------------
# Query: parsing, adornments, filtering
# ----------------------------------------------------------------------


class TestQuery:
    def test_parse_trailing_question_mark(self):
        query = Query.parse("path(a, X)?")
        assert query.name == "path"
        assert query.arity == 2
        assert query.adornment == "bf"

    @pytest.mark.parametrize("text", ["path(a, X)", "path(a, X).",
                                      "  path(a, X)?  "])
    def test_parse_terminator_optional(self, text):
        assert Query.parse(text) == Query.parse("path(a, X)?")

    def test_parse_empty_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            Query.parse("  ?")

    def test_adornment_and_positions(self):
        query = Query.parse("p(a, X, 3, Y)?")
        assert query.adornment == "bfbf"
        assert query.bound_positions == (0, 2)
        assert query.free_positions == (1, 3)
        assert query.bound_values == ("a", 3)

    def test_of_wraps_plain_values_and_none(self):
        query = Query.of("p", 1, None, Variable("X"), Constant("c"))
        assert query.adornment == "bffb"
        assert query.bound_values == (1, "c")

    def test_repeated_variable_groups(self):
        query = Query.parse("p(X, Y, X)?")
        assert query.repeated_groups == ((0, 2),)
        assert query.matches((1, 2, 1))
        assert not query.matches((1, 2, 3))

    def test_ground_and_full(self):
        assert Query.parse("p(a, b)?").is_ground()
        assert not Query.parse("p(a, X)?").is_ground()
        assert Query.parse("p(X, Y)?").is_full()
        assert not Query.parse("p(X, X)?").is_full()

    def test_filter_is_reference_semantics(self):
        relation = Relation.of("p", 2, [(1, 1), (1, 2), (2, 2)])
        assert Query.of("p", 1, None).filter(relation).rows == {(1, 1), (1, 2)}
        assert Query.parse("p(X, X)?").filter(relation).rows == {(1, 1), (2, 2)}
        assert Query.parse("p(X, Y)?").filter(relation) is relation

    def test_bindings(self):
        query = Query.parse("p(a, X, Y)?")
        rows = [("a", 1, 2), ("a", 3, 4)]
        assert list(query.bindings(rows)) == [{"X": 1, "Y": 2}, {"X": 3, "Y": 4}]

    def test_str(self):
        assert str(Query.parse("p(a, X)?")) == "p(a, X)?"


# ----------------------------------------------------------------------
# Magic rewrite: adornments, stabilisation, structure
# ----------------------------------------------------------------------


class TestMagicRewrite:
    def recursion(self, text: str, name: str = "path") -> LinearRecursion:
        program = parse_program(text)
        (predicate,) = [p for p in program.idb_predicates if p.name == name]
        return program.linear_recursion_of(predicate)

    def test_tc_bound_first_structure(self):
        magic = magic_rewrite(self.recursion(TC_LEFT), (0,))
        assert magic.adornment() == "bf"
        assert magic.magic_predicate.arity == 1
        assert magic.magic_predicate.name == "magic_path_bf"
        (rule,) = magic.magic_rules
        # m(Z) :- m(X), edge(X, Z).
        assert str(rule) == "magic_path_bf(Z) :- magic_path_bf(X), edge(X, Z)."
        assert all(
            rule.body[0].predicate == magic.magic_predicate
            for rule in (*magic.guarded_recursive, *magic.guarded_exit)
        )
        # The guarded rules are still a valid single-predicate linear
        # recursion — the shape the unchanged drivers require.
        LinearRecursion(magic.predicate, magic.guarded_recursive,
                        magic.guarded_exit)

    def test_tc_ground_query_keeps_both_positions(self):
        recursion = self.recursion(TC_LEFT)
        assert stable_bound_positions(recursion, (0, 1)) == (0, 1)
        assert magic_rewrite(recursion, (0, 1)).adornment() == "bb"

    def test_unstable_position_dropped(self):
        # The recursive atom's second position holds a variable no
        # sideways pass can bind, so bb degrades to bf.
        recursion = self.recursion(
            "path(X, Y) :- edge(X, Z), loop(Y, Y), path(Z, W).\n"
            "path(X, Y) :- edge(X, Y)."
        )
        assert stable_bound_positions(recursion, (0, 1)) == (0,)
        assert magic_rewrite(recursion, (0, 1)).adornment() == "bf"

    def test_nothing_stable_raises_not_applicable(self):
        recursion = self.recursion(
            "path(X, Y) :- path(Z, Y), edge(X, W).\n"
            "path(X, Y) :- edge(X, Y)."
        )
        with pytest.raises(NotApplicableError):
            magic_rewrite(recursion, (0,))

    def test_constant_in_rule_head(self):
        # Demand on a constant head position becomes a ground magic fact
        # check; the rewrite must keep compiling and stay exact.
        text = (
            "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
            "path(a, Y) :- special(Y).\n"
            "path(X, Y) :- edge(X, Y)."
        )
        database = Database.of(
            Relation.of("edge", 2, [("a", "b"), ("b", "c")]),
            Relation.of("special", 1, [("z",)]),
        )
        engine = QueryEngine(database, text)
        for text_query in ["path(a, X)?", "path(b, X)?", "path(a, z)?"]:
            query = Query.parse(text_query)
            reference = query.filter(engine.closure(query.predicate))
            forced = engine.ask(query, strategy="magic")
            assert forced.relation.rows == reference.rows

    def test_magic_name_avoids_collisions(self):
        recursion = self.recursion(TC_LEFT)
        magic = magic_rewrite(recursion, (0,),
                              reserved_names=("magic_path_bf",))
        assert magic.magic_predicate.name == "_magic_path_bf"

    def test_non_linear_program_rejected(self):
        program = (
            "path(X, Y) :- path(X, Z), path(Z, Y).\n"
            "path(X, Y) :- edge(X, Y)."
        )
        engine = QueryEngine(
            Database.of(Relation.of("edge", 2, [(1, 2)])), program,
        )
        with pytest.raises(RuleStructureError):
            engine.ask("path(1, X)?")

    def test_equality_atom_propagates_demand(self):
        # X = Z carries the binding sideways even without an EDB atom
        # touching Z directly.
        text = (
            "path(X, Y) :- edge(X, W), X = Z, path(Z, Y).\n"
            "path(X, Y) :- edge(X, Y)."
        )
        engine = QueryEngine(
            Database.of(Relation.of("edge", 2, CYCLIC_EDGES)), text,
        )
        query = Query.parse("path(a, X)?")
        reference = query.filter(engine.closure(query.predicate))
        assert engine.ask(query, strategy="magic").relation.rows == reference.rows

    def test_seed_arity_checked(self):
        magic = magic_rewrite(self.recursion(TC_LEFT), (0,))
        with pytest.raises(ValueError):
            magic.magic_seed(("a", "b"))


# ----------------------------------------------------------------------
# Reachability labels
# ----------------------------------------------------------------------


def brute_reach(edges):
    """Reference proper reachability by naive closure."""
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


class TestReachabilityLabels:
    def labels_of(self, edges, reverse=False):
        database = Database.of(Relation.of("edge", 2, edges))
        return build_labels(database, "edge", reverse=reverse)

    def test_chain(self):
        labels = self.labels_of([(i, i + 1) for i in range(5)])
        assert labels.reaches(0, 5)
        assert labels.reaches(2, 3)
        assert not labels.reaches(3, 2)
        assert not labels.reaches(0, 0)
        assert labels.successor_values(2) == {3, 4, 5}

    def test_tree_interval_fast_path(self):
        labels = self.labels_of(tree_edges(3).rows)
        # On a tree every positive answer is a strict interval containment.
        root_interval = labels.interval_of(0)
        for node in range(1, 7):
            pre, post = labels.interval_of(node)
            assert root_interval[0] <= pre and post <= root_interval[1]
            assert labels.reaches(0, node)

    def test_cycle_reaches_itself(self):
        labels = self.labels_of(cycle_edges(4).rows)
        for node in range(4):
            assert labels.reaches(node, node)
        assert labels.successor_values(0) == {0, 1, 2, 3}

    def test_self_loop(self):
        labels = self.labels_of([("f", "f"), ("a", "b")])
        assert labels.reaches("f", "f")
        assert not labels.reaches("a", "a")
        assert not labels.reaches("b", "b")

    def test_empty_relation(self):
        labels = self.labels_of([])
        assert not labels.reaches("a", "b")
        assert labels.successor_values("a") == frozenset()
        assert labels.node_count == 0

    def test_unknown_values(self):
        labels = self.labels_of([("a", "b")])
        assert not labels.reaches("zzz", "a")
        assert not labels.reaches("a", "zzz")
        assert labels.interval_of("zzz") is None

    def test_reverse_gives_predecessors(self):
        labels = self.labels_of([(1, 2), (2, 3), (4, 3)], reverse=True)
        assert labels.successor_values(3) == {1, 2, 4}
        assert set(labels.pairs_from(3)) == {(3, 1), (3, 2), (3, 4)}

    def test_arity_checked(self):
        database = Database.of(Relation.of("e", 3, [(1, 2, 3)]))
        with pytest.raises(ValueError):
            ReachabilityLabels(database.interned_relation("e", 3),
                               database.domain())

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_match_brute_force(self, seed):
        rng = random.Random(seed)
        edges = random_graph_edges(10, 18, rng=rng).rows
        labels = self.labels_of(edges)
        expected = brute_reach(edges)
        nodes = {value for edge in edges for value in edge}
        for a in nodes:
            for b in nodes:
                assert labels.reaches(a, b) == ((a, b) in expected), (a, b)
            assert labels.successor_values(a) == {
                b for (x, b) in expected if x == a
            }


# ----------------------------------------------------------------------
# QueryEngine: planning, tiers, parity, caching
# ----------------------------------------------------------------------


class TestQueryEngine:
    def test_plan_picks_cheapest_tier(self):
        engine = tc_engine(CYCLIC_EDGES)
        assert engine.plan("edge(a, X)?") == "edb"
        assert engine.plan("path(a, X)?") == "labels"
        assert engine.plan("path(X, Y)?") == "closure"
        assert engine.plan("path(X, X)?") == "closure"

    def test_plan_magic_when_labels_inapplicable(self):
        # Two recursive rules break the TC shape; magic still applies.
        program = (
            "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
            "path(X, Y) :- hop(X, Z), path(Z, Y).\n"
            "path(X, Y) :- edge(X, Y)."
        )
        database = Database.of(
            Relation.of("edge", 2, [("a", "b"), ("b", "c")]),
            Relation.of("hop", 2, [("b", "d")]),
        )
        engine = QueryEngine(database, program)
        assert engine.plan("path(a, X)?") == "magic"
        query = Query.parse("path(a, X)?")
        reference = query.filter(engine.closure(query.predicate))
        assert engine.ask(query).relation.rows == reference.rows

    @pytest.mark.parametrize("program", [TC_LEFT, TC_RIGHT])
    @pytest.mark.parametrize("text", [
        "path(a, X)?", "path(X, e)?", "path(a, e)?", "path(e, a)?",
        "path(b, b)?", "path(f, f)?", "path(zzz, X)?",
    ])
    def test_all_tiers_bit_identical(self, program, text):
        engine = tc_engine(CYCLIC_EDGES, program)
        query = Query.parse(text)
        reference = query.filter(engine.closure(query.predicate))
        for strategy in ("labels", "magic", "closure", "auto"):
            result = engine.ask(query, strategy=strategy)
            assert result.relation.rows == reference.rows, (strategy, text)

    def test_edb_tier(self):
        engine = tc_engine(CYCLIC_EDGES)
        result = engine.ask("edge(a, X)?")
        assert result.strategy == "edb"
        assert result.rows == {("a", "b")}
        with pytest.raises(NotApplicableError):
            engine.ask("edge(a, X)?", strategy="magic")
        with pytest.raises(NotApplicableError):
            engine.ask("path(a, X)?", strategy="edb")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            tc_engine(CYCLIC_EDGES).ask("path(a, X)?", strategy="warp")

    def test_ground_answer_is_boolean(self):
        engine = tc_engine(CYCLIC_EDGES)
        assert engine.ask("path(a, e)?")
        assert not engine.ask("path(e, a)?")

    def test_answer_iteration_and_bindings(self):
        engine = tc_engine([("a", "b"), ("b", "c")])
        result = engine.ask("path(a, X)?")
        assert list(result) == [("a", "b"), ("a", "c")]
        assert len(result) == 2
        assert list(result.bindings()) == [{"X": "b"}, {"X": "c"}]

    def test_with_database_invalidates_caches(self):
        engine = tc_engine([("a", "b")])
        assert engine.ask("path(a, X)?").rows == {("a", "b")}
        grown = engine.with_database(
            Database.of(Relation.of("edge", 2, [("a", "b"), ("b", "c")]))
        )
        assert grown.ask("path(a, X)?").rows == {("a", "b"), ("a", "c")}
        # The old engine's caches are untouched.
        assert engine.ask("path(a, X)?").rows == {("a", "b")}

    def test_labels_cached_per_engine(self):
        engine = tc_engine(CYCLIC_EDGES)
        assert engine.labels("edge") is engine.labels("edge")
        engine.ask("path(a, X)?", strategy="labels")
        engine.ask("path(X, a)?", strategy="labels")
        assert set(engine._labels) == {("edge", False), ("edge", True)}

    def test_with_database_invalidates_per_relation(self):
        """Mutating ``edge`` must not evict the ``other_edge`` caches."""
        program = (
            "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
            "path(X, Y) :- edge(X, Y).\n"
            "hop(X, Y) :- other_edge(X, Z), hop(Z, Y).\n"
            "hop(X, Y) :- other_edge(X, Y)."
        )
        edge = Relation.of("edge", 2, [("a", "b")])
        other = Relation.of("other_edge", 2, [("x", "y"), ("y", "z")])
        engine = QueryEngine(Database.of(edge, other), program)
        other_labels = engine.labels("other_edge")
        edge_labels = engine.labels("edge")
        hop = engine.closure(Predicate("hop", 2))
        path = engine.closure(Predicate("path", 2))

        grown = Relation.of("edge", 2, [("a", "b"), ("b", "c")])
        sibling = engine.with_database(
            engine.database.with_relation(grown))
        # other_edge untouched: its labels and closure survive by identity.
        assert sibling.labels("other_edge") is other_labels
        assert sibling.closure(Predicate("hop", 2)) is hop
        # edge mutated: its artefacts are rebuilt from the new generation.
        assert sibling.labels("edge") is not edge_labels
        assert sibling.labels("edge").edge_count == 2
        assert sibling.closure(Predicate("path", 2)) is not path
        assert sibling.closure(Predicate("path", 2)).rows == {
            ("a", "b"), ("b", "c"), ("a", "c")}
        # The original engine still serves its own generation.
        assert engine.labels("edge") is edge_labels
        assert engine.closure(Predicate("path", 2)) is path

    def test_in_place_swap_invalidates_own_caches(self):
        engine = tc_engine([("a", "b"), ("b", "c")])
        before = engine.closure(Predicate("path", 2))
        with pytest.warns(DeprecationWarning):
            engine.database.replace_relation(
                Relation.of("edge", 2, [("a", "b")]))
        after = engine.closure(Predicate("path", 2))
        assert after is not before
        assert after.rows == {("a", "b")}

    def test_no_program_edb_only(self):
        engine = QueryEngine(Database.of(Relation.of("e", 2, [(1, 2)])))
        assert engine.ask("e(1, X)?").rows == {(1, 2)}
        with pytest.raises(NotApplicableError):
            engine.recursion_of(Predicate("p", 2))

    def test_one_shot_answer(self):
        database = Database.of(Relation.of("edge", 2, [(1, 2), (2, 3)]))
        result = answer("path(1, X)?", TC_LEFT, database)
        assert result.rows == {(1, 2), (1, 3)}

    def test_transitive_closure_edge_detection(self):
        assert transitive_closure_edge(
            parse_program(TC_LEFT).linear_recursion_of(Predicate("path", 2))
        ) == "edge"
        assert transitive_closure_edge(
            parse_program(TC_RIGHT).linear_recursion_of(Predicate("path", 2))
        ) == "edge"
        other = parse_program(
            "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
            "path(X, Y) :- hop(X, Y)."
        ).linear_recursion_of(Predicate("path", 2))
        assert transitive_closure_edge(other) is None


# ----------------------------------------------------------------------
# Parity across every executor × backend
# ----------------------------------------------------------------------


class TestParityAcrossConfigs:
    @pytest.mark.parametrize("config", ALL_CONFIGS,
                             ids=lambda c: c.spec() if c else "default")
    def test_magic_parity_on_every_config(self, config):
        edges = layered_dag_edges(6, 4, rng=random.Random(3)).rows
        engine = tc_engine(edges, config=config)
        reference_engine = tc_engine(edges)
        source = sorted(edges)[0][0]
        for text in [f"path({source}, X)?", f"path(X, {source})?"]:
            query = Query.parse(text)
            reference = query.filter(
                reference_engine.closure(query.predicate)
            )
            result = engine.ask(query, strategy="magic")
            assert result.relation.rows == reference.rows, (config, text)


# ----------------------------------------------------------------------
# Property sweeps (hypothesis)
# ----------------------------------------------------------------------


edges_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=0, max_size=30
)


class TestPropertyParity:
    @SETTINGS
    @given(edges=edges_strategy, source=st.integers(0, 9),
           target=st.integers(0, 9))
    def test_tc_tiers_agree_on_random_graphs(self, edges, source, target):
        engine = tc_engine(edges or [(0, 1)])
        full = engine.closure(Predicate("path", 2))
        for query in (Query.of("path", source, None),
                      Query.of("path", None, target),
                      Query.of("path", source, target)):
            reference = query.filter(full)
            for strategy in ("labels", "magic"):
                result = engine.ask(query, strategy=strategy)
                assert result.relation.rows == reference.rows, strategy

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_magic_parity_on_random_restricted_rules(self, seed):
        """Demand-rewritten == full-closure-filtered on generated rules."""
        rng = random.Random(seed)
        arity = rng.choice((2, 3))
        rules = tuple(
            random_restricted_rule(arity, rng.randint(1, 2), rng,
                                   predicate_prefix=prefix)
            for prefix in ("q", "r")[: rng.randint(1, 2)]
        )
        recursion = LinearRecursion(Predicate("p", arity), rules, ())
        domain = list(range(6))
        database = Database.of(*[
            Relation.of(name.name, 2, [
                (rng.choice(domain), rng.choice(domain)) for _ in range(8)
            ])
            for rule in rules for name in
            {atom.predicate for atom in rule.nonrecursive_atoms()
             if not atom.is_equality()}
        ])
        initial = Relation.of("p", arity, [
            tuple(rng.choice(domain) for _ in range(arity)) for _ in range(4)
        ])
        full = seminaive_closure(rules, initial, database)
        bound_value = rng.choice(domain)
        query = Query.of("p", bound_value, *[None] * (arity - 1))
        reference = query.filter(full)
        try:
            magic = magic_rewrite(recursion, query.bound_positions,
                                  reserved_names=database.names())
        except NotApplicableError:
            return  # nothing stable: full closure is the documented plan
        for config in SERIAL_CONFIGS:
            demanded = magic.solve(
                (bound_value,), database, initial=initial, config=config,
            )
            assert query.filter(demanded).rows == reference.rows, config


# ----------------------------------------------------------------------
# The solve() surface and EvalConfig.from_spec
# ----------------------------------------------------------------------


class TestSolveApi:
    DATABASE = Database.of(Relation.of("edge", 2, [(1, 2), (2, 3), (3, 4)]))

    def test_solve_text_program(self):
        closure = solve(TC_LEFT, self.DATABASE)
        assert len(closure.rows) == 6

    def test_solve_with_spec_config(self):
        closure = solve(TC_LEFT, self.DATABASE, config="interned")
        assert len(closure.rows) == 6

    def test_solve_resolves_named_predicate(self):
        program = TC_LEFT + "\nreach(X) :- edge(Y, X)."
        with pytest.raises(RuleStructureError, match="2 predicates"):
            solve(program, self.DATABASE)
        assert len(solve(program, self.DATABASE, predicate="path").rows) == 6
        with pytest.raises(RuleStructureError, match="No rules"):
            solve(program, self.DATABASE, predicate="nope")

    @pytest.mark.parametrize("spec,mode,backend", [
        ("", "rows", "serial"),
        ("batch", "batch", "serial"),
        ("interned", "interned", "serial"),
        ("threads", "rows", "threads"),
        ("interned-processes", "interned", "processes"),
        ("processes-batch", "batch", "processes"),
    ])
    def test_from_spec(self, spec, mode, backend):
        config = EvalConfig.from_spec(spec)
        assert config.mode() == mode
        assert config.backend == backend
        assert config.spec() == EvalConfig.from_spec(config.spec()).spec()

    @pytest.mark.parametrize("spec", ["rows-batch", "threads-serial",
                                      "warp", "rows--"])
    def test_from_spec_rejects(self, spec):
        if spec == "rows--":
            # empty tokens are skipped, so this is just "rows"
            assert EvalConfig.from_spec(spec).mode() == "rows"
        else:
            with pytest.raises(ValueError):
                EvalConfig.from_spec(spec)

    def test_from_spec_keyword_conflict(self):
        with pytest.raises(ValueError, match="twice"):
            EvalConfig.from_spec("threads", backend="processes")
        assert EvalConfig.from_spec(
            "threads", max_workers=2
        ).max_workers == 2

    def test_from_spec_emits_no_deprecation_warning(self):
        import warnings
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            EvalConfig.from_spec("rows-threads")
        assert not caught
