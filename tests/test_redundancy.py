"""Tests for recursive redundancy (Theorems 4.2, 6.3, 6.4)."""

import random

import pytest

from repro.core.redundancy import (
    direct_closure,
    find_redundant_predicates,
    is_recursively_redundant,
    redundancy_aware_closure,
    redundancy_factorization,
)
from repro.cq.containment import is_equivalent
from repro.datalog.composition import compose_chain, power
from repro.datalog.parser import parse_rule
from repro.exceptions import NotApplicableError
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.workloads import scenarios
from repro.workloads.graphs import chain_edges, random_graph_edges
from repro.workloads.relations import random_relation, random_unary_relation


class TestDetection:
    def test_example_6_1_cheap_is_redundant(self):
        rule = scenarios.example_6_1_rule()
        names = {finding.predicate_name for finding in find_redundant_predicates(rule)}
        assert names == {"cheap"}
        assert is_recursively_redundant(rule, "cheap")
        assert not is_recursively_redundant(rule, "knows")

    def test_example_6_2_r_is_redundant(self):
        rule = scenarios.example_6_2_rule()
        names = {finding.predicate_name for finding in find_redundant_predicates(rule)}
        assert "r" in names
        assert "q" not in names and "s" not in names

    def test_plain_transitive_closure_has_no_redundancy(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        assert find_redundant_predicates(rule) == ()

    def test_finding_reports_witness(self):
        rule = scenarios.example_6_1_rule()
        finding = find_redundant_predicates(rule)[0]
        assert finding.witness.low < finding.witness.high
        assert "cheap" in str(finding)


class TestFactorization:
    def test_example_6_2_factorization_matches_paper(self):
        rule = scenarios.example_6_2_rule()
        factorization = redundancy_factorization(rule)
        assert factorization.exponent == 2
        assert str(factorization.factor_c) == "p(W, X, Y, Z) :- p(X, W, X, Z), r(X, Y)."
        c_power = power(factorization.factor_c, 2)
        assert is_equivalent(
            power(rule, 2), compose_chain(factorization.factor_b, c_power)
        )
        # B and C^2 commute (stated in Example 6.2 via Theorem 5.1).
        assert is_equivalent(
            compose_chain(factorization.factor_b, c_power),
            compose_chain(c_power, factorization.factor_b),
        )

    def test_example_6_3_factorization_without_commutation(self):
        rule = scenarios.example_6_3_rule()
        factorization = redundancy_factorization(rule)
        c_power = power(factorization.factor_c, factorization.exponent)
        bc = compose_chain(factorization.factor_b, c_power)
        cb = compose_chain(c_power, factorization.factor_b)
        assert not is_equivalent(bc, cb)
        assert is_equivalent(compose_chain(c_power, bc), compose_chain(c_power, cb))

    def test_example_6_1_factorization(self):
        factorization = redundancy_factorization(scenarios.example_6_1_rule())
        assert factorization.exponent == 1
        assert factorization.bounded_c_applications >= 1
        assert "cheap" in str(factorization.factor_c)
        assert "cheap" not in str(factorization.factor_b)

    def test_no_redundancy_raises(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        with pytest.raises(NotApplicableError):
            redundancy_factorization(rule)

    def test_explain_mentions_bound(self):
        factorization = redundancy_factorization(scenarios.example_6_1_rule())
        assert "at most" in factorization.explain()


class TestRedundancyAwareEvaluation:
    def _random_database_61(self, size, seed):
        rng = random.Random(seed)
        return (
            Database.of(
                chain_edges(size, name="knows"),
                random_unary_relation("cheap", size // 2 + 1, domain_size=size, rng=rng),
            ),
            random_relation("buys", 2, size, domain_size=size + 1, rng=rng),
        )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_direct_closure_on_example_6_1(self, seed):
        rule = scenarios.example_6_1_rule()
        factorization = redundancy_factorization(rule)
        database, initial = self._random_database_61(12, seed)
        direct = direct_closure(rule, initial, database)
        aware = redundancy_aware_closure(factorization, initial, database)
        assert direct.rows == aware.rows

    @pytest.mark.parametrize("seed", [4, 5])
    def test_matches_direct_closure_on_example_6_2(self, seed):
        rule = scenarios.example_6_2_rule()
        factorization = redundancy_factorization(rule)
        rng = random.Random(seed)
        database = Database.of(
            random_graph_edges(6, 14, name="q", rng=rng, allow_self_loops=True),
            random_graph_edges(6, 14, name="r", rng=rng, allow_self_loops=True),
            random_graph_edges(6, 14, name="s", rng=rng, allow_self_loops=True),
        )
        initial = random_relation("p", 4, 25, domain_size=6, rng=rng)
        direct = direct_closure(rule, initial, database)
        aware = redundancy_aware_closure(factorization, initial, database)
        assert direct.rows == aware.rows

    def test_matches_direct_closure_on_example_6_3(self):
        rule = scenarios.example_6_3_rule()
        factorization = redundancy_factorization(rule)
        rng = random.Random(9)
        database = Database.of(
            random_graph_edges(5, 12, name="q", rng=rng, allow_self_loops=True),
            random_graph_edges(5, 12, name="r", rng=rng, allow_self_loops=True),
            random_graph_edges(5, 12, name="s", rng=rng, allow_self_loops=True),
        )
        initial = random_relation("p", 4, 20, domain_size=5, rng=rng)
        direct = direct_closure(rule, initial, database)
        aware = redundancy_aware_closure(factorization, initial, database)
        assert direct.rows == aware.rows

    def test_empty_initial_relation(self):
        rule = scenarios.example_6_1_rule()
        factorization = redundancy_factorization(rule)
        database = Database.of(
            chain_edges(4, name="knows"), Relation.of("cheap", 1, [(1,)])
        )
        empty = Relation.empty("buys", 2)
        assert redundancy_aware_closure(factorization, empty, database).is_empty()
