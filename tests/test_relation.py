"""Unit tests for repro.storage.relation."""

import pytest

from repro.exceptions import SchemaError
from repro.storage.relation import Relation


class TestConstruction:
    def test_of_normalises_rows(self):
        relation = Relation.of("r", 2, [[1, 2], (1, 2), (3, 4)])
        assert len(relation) == 2

    def test_canonical_rows_kept_without_retupling(self):
        # A frozenset of plain tuples is already canonical: construction
        # must keep the object instead of re-tupling and re-hashing it.
        rows = frozenset({(1, 2), (3, 4)})
        relation = Relation("r", 2, rows)
        assert relation.rows is rows

    def test_non_canonical_rows_still_normalised(self):
        relation = Relation("r", 2, frozenset({(1, 2)}) | {(3, 4)})
        assert relation.rows == frozenset({(1, 2), (3, 4)})
        lists = Relation("r", 2, [[1, 2], [1, 2]])
        assert lists.rows == frozenset({(1, 2)})

    def test_canonical_rows_are_still_validated(self):
        with pytest.raises(SchemaError):
            Relation("r", 2, frozenset({(1, 2, 3)}))

    def test_empty(self):
        relation = Relation.empty("r", 3)
        assert relation.is_empty()
        assert relation.arity == 3

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation.of("r", 2, [(1, 2, 3)])

    def test_membership_and_iteration(self):
        relation = Relation.of("r", 2, [(1, 2)])
        assert (1, 2) in relation
        assert [1, 2] in relation
        assert (2, 1) not in relation
        assert list(relation) == [(1, 2)]


class TestSetAlgebra:
    def test_union(self):
        first = Relation.of("r", 1, [(1,), (2,)])
        second = Relation.of("s", 1, [(2,), (3,)])
        assert len(first.union(second)) == 3
        assert first.union(second).name == "r"

    def test_difference_and_intersection(self):
        first = Relation.of("r", 1, [(1,), (2,)])
        second = Relation.of("r", 1, [(2,)])
        assert first.difference(second).rows == frozenset({(1,)})
        assert first.intersection(second).rows == frozenset({(2,)})

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation.of("r", 1, []).union(Relation.of("r", 2, []))

    def test_with_rows(self):
        relation = Relation.of("r", 1, [(1,)]).with_rows([(2,), (1,)])
        assert len(relation) == 2

    def test_subset_ordering(self):
        small = Relation.of("r", 1, [(1,)])
        big = Relation.of("r", 1, [(1,), (2,)])
        assert small <= big
        assert not big <= small

    def test_renamed(self):
        relation = Relation.of("r", 1, [(1,)]).renamed("s")
        assert relation.name == "s"
        assert relation.rows == frozenset({(1,)})


class TestQueries:
    def test_filter(self):
        relation = Relation.of("r", 2, [(1, 2), (3, 4)])
        assert relation.filter(lambda row: row[0] == 1).rows == frozenset({(1, 2)})

    def test_project(self):
        relation = Relation.of("r", 3, [(1, 2, 3), (1, 5, 6)])
        projected = relation.project([0])
        assert projected.arity == 1
        assert projected.rows == frozenset({(1,)})

    def test_project_reorders_columns(self):
        relation = Relation.of("r", 2, [(1, 2)])
        assert relation.project([1, 0]).rows == frozenset({(2, 1)})

    def test_project_out_of_range(self):
        with pytest.raises(SchemaError):
            Relation.of("r", 2, []).project([2])

    def test_select_equal(self):
        relation = Relation.of("r", 2, [(1, 2), (3, 2), (3, 4)])
        assert relation.select_equal(0, 3).rows == frozenset({(3, 2), (3, 4)})
        with pytest.raises(SchemaError):
            relation.select_equal(5, 3)

    def test_column_values_and_active_domain(self):
        relation = Relation.of("r", 2, [(1, 2), (3, 2)])
        assert relation.column_values(1) == frozenset({2})
        assert relation.active_domain() == frozenset({1, 2, 3})
        with pytest.raises(SchemaError):
            relation.column_values(9)

    def test_sorted_rows_deterministic(self):
        relation = Relation.of("r", 2, [(3, 1), (1, 2), (2, 2)])
        assert relation.sorted_rows() == sorted(relation.rows, key=lambda r: tuple(map(str, r)))

    def test_str_mentions_name_and_size(self):
        assert "r/2" in str(Relation.of("r", 2, [(1, 2)]))


class TestColumns:
    def test_columns_row_aligned(self):
        relation = Relation.of("r", 2, [(1, "a"), (2, "b")])
        first, second = relation.columns()
        assert sorted(zip(first, second)) == [(1, "a"), (2, "b")]

    def test_columns_of_empty_relation(self):
        first, second = Relation.empty("r", 2).columns()
        assert first == [] and second == []

    def test_columns_empty_positions_tuple(self):
        relation = Relation.of("r", 2, [(1, 2)])
        assert relation.columns(()) == ()

    def test_columns_of_arity_zero_relation(self):
        relation = Relation.of("n", 0, [()])
        assert relation.columns() == ()
        assert relation.columns(()) == ()

    def test_columns_repeated_positions(self):
        relation = Relation.of("r", 2, [(1, 2), (3, 4)])
        first, again, second = relation.columns((0, 0, 1))
        assert first == again
        assert sorted(zip(first, second)) == [(1, 2), (3, 4)]

    def test_columns_out_of_range(self):
        with pytest.raises(SchemaError):
            Relation.of("r", 2, [(1, 2)]).columns([2])
        with pytest.raises(SchemaError):
            Relation.empty("r", 0).columns([0])

    def test_columns_with_domain_returns_interned_arrays(self):
        from array import array

        from repro.storage.domain import Domain

        domain = Domain()
        relation = Relation.of("r", 2, [(1, "a"), (2, "b")])
        first, second = relation.columns(domain=domain)
        assert isinstance(first, array) and isinstance(second, array)
        decoded = sorted(
            (domain.value_of(x), domain.value_of(y))
            for x, y in zip(first, second)
        )
        assert decoded == [(1, "a"), (2, "b")]

    def test_columns_with_domain_empty_relation(self):
        from repro.storage.domain import Domain

        (column,) = Relation.empty("r", 1).columns(domain=Domain())
        assert len(column) == 0
