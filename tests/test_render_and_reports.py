"""Tests for rendering helpers and report objects across the library."""

from repro.agraph.graph import AlphaGraph
from repro.agraph.render import render_ascii, render_dot
from repro.core.analysis import RecursionAnalyzer
from repro.core.commutativity import sufficient_condition
from repro.core.planner import QueryPlanner, Strategy
from repro.core.redundancy import redundancy_factorization
from repro.core.separability import is_separable, separable_plan
from repro.datalog.atoms import Predicate
from repro.datalog.parser import parse_rule
from repro.storage.selection import EqualitySelection
from repro.workloads import scenarios


class TestAgraphRendering:
    def test_ascii_lists_classification_of_each_distinguished_variable(self):
        graph = AlphaGraph(scenarios.example_6_2_rule())
        text = render_ascii(graph)
        assert "link 2-persistent" in text
        assert "general (1-ray)" in text

    def test_ascii_marks_nondistinguished_variables(self):
        graph = AlphaGraph(parse_rule("p(X) :- p(U), q(X, U)."))
        assert "nondistinguished" in render_ascii(graph)

    def test_dot_has_one_edge_line_per_arc(self):
        graph = AlphaGraph(scenarios.figure_2_rule())
        dot = render_dot(graph)
        arrow_lines = [line for line in dot.splitlines() if "->" in line]
        assert len(arrow_lines) == len(graph.static_arcs) + len(graph.dynamic_arcs)


class TestReportExplanations:
    def test_commutativity_report_explains_exactness(self):
        report = sufficient_condition(*scenarios.example_5_2_rules())
        assert "exact" in report.explain()

    def test_separability_report_explain(self):
        text = is_separable(*scenarios.example_5_3_rules()).explain()
        assert "separable: False" in text

    def test_separable_plan_explain_names_operators(self):
        first, second = scenarios.example_5_2_rules()
        plan = separable_plan(first, second, EqualitySelection(1, "a"))
        assert "outer" in plan.explain() and "inner" in plan.explain()

    def test_factorization_explain_mentions_power_and_bound(self):
        factorization = redundancy_factorization(scenarios.example_6_2_rule())
        text = factorization.explain()
        assert "A^2" in text and "at most" in text

    def test_plan_explain_for_each_strategy(self):
        planner = QueryPlanner()
        decomposed = planner.plan(
            scenarios.two_sided_transitive_closure_program().linear_recursion_of(
                Predicate("path", 2)
            )
        )
        assert decomposed.strategy == Strategy.DECOMPOSED
        assert "evaluation order" in decomposed.explain()

        redundant = planner.plan(
            scenarios.redundant_buys_program().linear_recursion_of(Predicate("buys", 2))
        )
        assert redundant.strategy == Strategy.REDUNDANCY_AWARE
        assert "C factor" in redundant.explain()

    def test_analyzer_report_renders_for_single_rule_recursion(self):
        recursion = scenarios.same_generation_program().linear_recursion_of(
            Predicate("sg", 2)
        )
        report = RecursionAnalyzer().analyze(recursion)
        text = report.render()
        assert "predicate: sg/2" in text
        assert "suggested plan" in text
