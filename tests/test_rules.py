"""Unit tests for repro.datalog.rules."""

import pytest

from repro.datalog.parser import parse_rule
from repro.datalog.rules import LinearRuleView, Rule, require_same_consequent, same_consequent
from repro.datalog.terms import Variable
from repro.exceptions import RuleStructureError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestRuleStructure:
    def test_fact_detection(self):
        assert parse_rule("edge(a, b).").is_fact()
        assert not parse_rule("p(X) :- q(X).").is_fact()

    def test_variables_in_order(self):
        rule = parse_rule("p(X, Y) :- q(Y, Z), r(X).")
        assert rule.variables() == (X, Y, Z)

    def test_distinguished_and_nondistinguished(self):
        rule = parse_rule("p(X, Y) :- q(Y, Z), r(X, W).")
        assert rule.distinguished_variables() == (X, Y)
        assert set(rule.nondistinguished_variables()) == {Z, Variable("W")}

    def test_constant_free(self):
        assert parse_rule("p(X) :- q(X, Y).").is_constant_free()
        assert not parse_rule("p(X) :- q(X, a).").is_constant_free()

    def test_range_restricted(self):
        assert parse_rule("p(X, Y) :- q(X), r(Y).").is_range_restricted()
        assert not parse_rule("p(X, Y) :- q(X).").is_range_restricted()

    def test_repeated_head_variables(self):
        assert parse_rule("p(X, X) :- q(X).").has_repeated_head_variables()
        assert not parse_rule("p(X, Y) :- q(X, Y).").has_repeated_head_variables()

    def test_body_predicates_with_repeats(self):
        rule = parse_rule("p(X) :- q(X), q(X), r(X).")
        assert [pred.name for pred in rule.body_predicates()] == ["q", "q", "r"]


class TestRecursionStructure:
    def test_linear_recursive(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        assert rule.is_recursive()
        assert rule.is_linear_recursive()
        assert not rule.is_nonrecursive()

    def test_nonlinear_recursive(self):
        rule = parse_rule("p(X, Y) :- p(X, Z), p(Z, Y).")
        assert rule.is_recursive()
        assert not rule.is_linear_recursive()

    def test_exit_rule(self):
        rule = parse_rule("p(X, Y) :- e(X, Y).")
        assert rule.is_nonrecursive()
        assert rule.recursive_atoms() == ()

    def test_nonrecursive_atoms(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y), f(Y).")
        assert [atom.name for atom in rule.nonrecursive_atoms()] == ["e", "f"]

    def test_repeated_nonrecursive_predicates(self):
        assert parse_rule("p(X) :- q(X), q(X), p(X).").has_repeated_nonrecursive_predicates()
        assert not parse_rule("p(X) :- q(X), r(X), p(X).").has_repeated_nonrecursive_predicates()

    def test_restricted_class(self):
        assert parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).").in_restricted_class()
        assert not parse_rule("p(X, X) :- e(X, Z), p(Z, X).").in_restricted_class()
        assert not parse_rule("p(X, Y) :- e(X, Z), e(Z, Y), p(Z, Y).").in_restricted_class()
        assert not parse_rule("p(X, Y) :- p(Z, Y).").in_restricted_class()


class TestLinearRuleView:
    def test_requires_linear_rule(self):
        with pytest.raises(RuleStructureError):
            LinearRuleView(parse_rule("p(X) :- q(X)."))
        with pytest.raises(RuleStructureError):
            LinearRuleView(parse_rule("p(X) :- p(X), p(X)."))

    def test_recursive_atom_and_parameters(self):
        view = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y), f(Y).").linear_view()
        assert view.recursive_atom.name == "p"
        assert [atom.name for atom in view.nonrecursive_atoms] == ["e", "f"]
        assert view.predicate.name == "p"

    def test_h_function(self):
        view = parse_rule("p(X, Y) :- p(U, Y), q(X, U).").linear_view()
        assert view.h_of(X) == Variable("U")
        assert view.h_of(Y) == Y

    def test_h_power(self):
        view = parse_rule("p(X, Y) :- p(Y, X), q(X).").linear_view()
        assert view.h_power(X, 1) == Y
        assert view.h_power(X, 2) == X
        assert view.h_power(X, 0) == X

    def test_h_power_stops_at_nondistinguished(self):
        view = parse_rule("p(X, Y) :- p(U, X), q(Y, U).").linear_view()
        assert view.h_power(X, 1) == Variable("U")
        assert view.h_power(X, 2) is None

    def test_occurrence_counts(self):
        view = parse_rule("p(X, Y) :- p(Y, Y), q(X, Y).").linear_view()
        assert view.head_occurrences(X) == 1
        assert view.recursive_occurrences(Y) == 2
        assert view.occurrences_outside_dynamic(Y) == 1
        assert view.occurrences_outside_dynamic(X) == 1

    def test_head_position_of(self):
        view = parse_rule("p(X, Y) :- p(X, Y), q(X).").linear_view()
        assert view.head_position_of(Y) == 1
        with pytest.raises(KeyError):
            view.head_position_of(Z)


class TestConsequentHelpers:
    def test_same_consequent(self):
        first = parse_rule("p(X, Y) :- q(X, Y).")
        second = parse_rule("p(X, Y) :- r(X, Y).")
        third = parse_rule("p(A, B) :- r(A, B).")
        assert same_consequent(first, second)
        assert not same_consequent(first, third)

    def test_require_same_consequent_raises(self):
        first = parse_rule("p(X, Y) :- q(X, Y).")
        third = parse_rule("p(A, B) :- r(A, B).")
        with pytest.raises(RuleStructureError):
            require_same_consequent(first, third)

    def test_rule_str_roundtrips_through_parser(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        assert parse_rule(str(rule)) == rule
