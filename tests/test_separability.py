"""Tests for separability (Section 6.1, Theorems 4.1 and 6.2)."""

from repro.core.commutativity import commute
from repro.core.separability import (
    is_separable,
    selection_commutes_with,
    separable_plan,
)
from repro.datalog.parser import parse_rule
from repro.storage.selection import EqualitySelection, PositionEqualitySelection
from repro.workloads import scenarios


class TestSeparabilityDetection:
    def test_transitive_closure_forms_are_separable(self):
        report = is_separable(*scenarios.example_5_2_rules())
        assert report.separable
        assert report.disjoint_nonrecursive_variables

    def test_example_5_3_not_separable(self):
        report = is_separable(*scenarios.example_5_3_rules())
        assert not report.separable
        # The paper notes conditions (2) and (3) are the ones violated.
        assert not report.condition_2 or not report.condition_3

    def test_condition_1_violation(self):
        # X maps to another distinguished variable (a 2-cycle).
        first = parse_rule("p(X, Y) :- p(Y, X), q(X).")
        second = parse_rule("p(X, Y) :- p(X, V), r(V, Y).")
        assert not is_separable(first, second).condition_1

    def test_condition_4_violation(self):
        # Static subgraph of the first rule is disconnected (q and s parts).
        first = parse_rule("p(X, Y) :- p(U, V), q(X, U), s(Y, V).")
        second = parse_rule("p(X, Y) :- p(X, Y), t(X, Y).")
        report = is_separable(first, second)
        assert not report.condition_4

    def test_explain_contains_all_conditions(self):
        text = is_separable(*scenarios.example_5_2_rules()).explain()
        assert "(1)" in text and "(4)" in text and "separable: True" in text


class TestTheorem62:
    def test_separable_implies_commutative(self):
        first, second = scenarios.example_5_2_rules()
        assert is_separable(first, second).separable
        assert commute(first, second)

    def test_commutative_does_not_imply_separable(self):
        first, second = scenarios.example_5_3_rules()
        assert commute(first, second)
        assert not is_separable(first, second).separable

    def test_handcrafted_separable_pairs_commute(self):
        pairs = [
            (
                parse_rule("p(X, Y) :- p(U, Y), q(X, U)."),
                parse_rule("p(X, Y) :- p(X, V), r(V, Y)."),
            ),
            (
                parse_rule("p(X, Y, Z) :- p(U, Y, Z), a(X, U)."),
                parse_rule("p(X, Y, Z) :- p(X, V, W), b(V, Y), b(W, Z)."),
            ),
        ]
        for first, second in pairs:
            if is_separable(first, second).separable:
                assert commute(first, second)


class TestSelectionCommutation:
    def test_selection_on_persistent_position_commutes(self):
        rule = parse_rule("p(X, Y) :- p(X, V), r(V, Y).")
        assert selection_commutes_with(rule, EqualitySelection(0, "a"))
        assert not selection_commutes_with(rule, EqualitySelection(1, "a"))

    def test_position_equality_selection(self):
        rule = parse_rule("p(X, Y, Z) :- p(X, Y, W), r(W, Z).")
        assert selection_commutes_with(rule, PositionEqualitySelection(0, 1))
        assert not selection_commutes_with(rule, PositionEqualitySelection(0, 2))

    def test_out_of_range_position(self):
        rule = parse_rule("p(X, Y) :- p(X, V), r(V, Y).")
        assert not selection_commutes_with(rule, EqualitySelection(7, "a"))


class TestSeparablePlan:
    def test_plan_for_theorem_4_1_instance(self):
        first, second = scenarios.example_5_2_rules()
        # Selection on position 1: commutes with the first rule (Y persists).
        plan = separable_plan(first, second, EqualitySelection(1, "a"))
        assert plan is not None
        assert plan.outer.head.predicate.name == "p"
        assert "Theorem 4.1" in plan.explain()

    def test_plan_orientation_follows_selection(self):
        first, second = scenarios.example_5_2_rules()
        plan = separable_plan(first, second, EqualitySelection(0, "a"))
        assert plan is not None
        # Position 0 is persistent in the second rule, so it becomes outer.
        assert plan.outer == plan.commutativity.second
        assert not plan.push_into_initial

    def test_push_when_selection_commutes_with_both(self):
        first = parse_rule("p(X, Y, Z) :- p(X, U, Z), a(U, Y).")
        second = parse_rule("p(X, Y, Z) :- p(X, Y, W), b(W, Z).")
        plan = separable_plan(first, second, EqualitySelection(0, "a"))
        assert plan is not None and plan.push_into_initial

    def test_no_plan_without_commutativity(self):
        first = parse_rule("p(X, Y) :- a(X, U), p(U, Y).")
        second = parse_rule("p(X, Y) :- b(X, U), p(U, Y).")
        assert separable_plan(first, second, EqualitySelection(0, "a")) is None

    def test_no_plan_when_selection_commutes_with_neither(self):
        first = parse_rule("p(X, Y) :- p(U, Y), q(X, U).")
        second = parse_rule("p(X, Y) :- p(U, V), q(X, U), r(V, Y).")
        # Position 0 (X) is general in both rules.
        assert separable_plan(first, second, EqualitySelection(0, "a")) is None
