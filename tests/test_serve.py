"""Tests for the async serving layer: LiveEngine, Session, Snapshot,
subscriptions.

No pytest-asyncio in the toolchain, so every test drives its own loop
with ``asyncio.run`` — which also keeps the single-writer/loop
interaction explicit in each scenario.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import (
    Database,
    EvalConfig,
    LiveEngine,
    OverloadError,
    QueryTimeoutError,
    Relation,
    Session,
    Snapshot,
    solve,
    subscribe,
)
from repro.exceptions import SchemaError

TC = (
    "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
    "path(X, Y) :- edge(X, Y)."
)


def tc_db(*pairs):
    return Database.of(Relation.of("edge", 2, list(pairs)))


async def started(pairs=(("a", "b"), ("b", "c")), config=None):
    return await LiveEngine(TC, tc_db(*pairs), config=config).start()


def run(coroutine):
    return asyncio.run(coroutine)


class TestLifecycle:
    def test_requires_start(self):
        engine = LiveEngine(TC, tc_db(("a", "b")))
        assert not engine.started
        with pytest.raises(RuntimeError, match="start"):
            engine.snapshot()
        with pytest.raises(RuntimeError, match="start"):
            engine.transaction()

    def test_start_is_idempotent(self):
        async def scenario():
            engine = await started()
            assert await engine.start() is engine
            assert engine.generation == 0

        run(scenario())

    def test_defaults_to_maintained_mode(self):
        engine = LiveEngine(TC, tc_db(("a", "b")))
        assert engine.maintained
        baseline = LiveEngine(TC, tc_db(("a", "b")), config=EvalConfig())
        assert not baseline.maintained

    def test_config_spec_string(self):
        engine = LiveEngine(TC, tc_db(("a", "b")),
                            config="interned-maintain")
        assert engine.maintained and engine.config.intern


class TestCommits:
    def test_commit_publishes_new_generation(self):
        async def scenario():
            engine = await started()
            async with engine.transaction() as session:
                session.insert("edge", ("c", "d"))
            assert engine.generation == 1
            assert engine.ask("path(a, X)?").rows == {
                ("a", "b"), ("a", "c"), ("a", "d")}

        run(scenario())

    def test_snapshot_isolation(self):
        async def scenario():
            engine = await started()
            frozen = engine.snapshot()
            assert isinstance(frozen, Snapshot)
            async with engine.transaction() as session:
                session.delete("edge", ("b", "c"))
            # The old snapshot still answers from its generation.
            assert frozen.generation == 0
            assert frozen.ask("path(a, X)?").rows == {("a", "b"), ("a", "c")}
            assert frozen.relation("edge").rows == {("a", "b"), ("b", "c")}
            # The new one sees the delete.
            current = engine.snapshot()
            assert current.generation == 1
            assert current.ask("path(a, X)?").rows == {("a", "b")}

        run(scenario())

    def test_explicit_commit_returns_snapshot(self):
        async def scenario():
            engine = await started()
            session = engine.transaction()
            session.insert("edge", ("c", "d")).insert("edge", ("d", "e"))
            assert session.pending == 2
            snapshot = await session.commit()
            assert snapshot.generation == 1
            assert snapshot.closure("path").rows == solve(
                TC, snapshot.database).rows
            with pytest.raises(RuntimeError, match="committed"):
                session.insert("edge", ("x", "y"))
            with pytest.raises(RuntimeError, match="committed"):
                await session.commit()

        run(scenario())

    def test_noop_commit_keeps_generation(self):
        async def scenario():
            engine = await started()
            async with engine.transaction() as session:
                session.insert("edge", ("a", "b"))  # already present
            assert engine.generation == 0

        run(scenario())

    def test_exception_rolls_back(self):
        async def scenario():
            engine = await started()
            with pytest.raises(ValueError):
                async with engine.transaction() as session:
                    session.insert("edge", ("x", "y"))
                    raise ValueError("boom")
            assert engine.generation == 0
            assert ("x", "y") not in engine.snapshot().relation("edge").rows

        run(scenario())

    def test_delete_then_insert_nets_within_transaction(self):
        async def scenario():
            engine = await started()
            async with engine.transaction() as session:
                session.delete("edge", ("a", "b"))
                session.insert("edge", ("a", "b"))  # last call wins
                session.insert("edge", ("c", "d"))
            assert engine.snapshot().relation("edge").rows == {
                ("a", "b"), ("b", "c"), ("c", "d")}

        run(scenario())

    def test_mutating_idb_fails_and_rolls_back(self):
        async def scenario():
            engine = await started()
            session = engine.transaction()
            session.insert("path", ("x", "y"))
            with pytest.raises(SchemaError, match="defined by rules"):
                await session.commit()
            assert engine.generation == 0

        run(scenario())

    def test_concurrent_writers_serialise(self):
        async def scenario():
            engine = await started()

            async def writer(pair):
                async with engine.transaction() as session:
                    session.insert("edge", pair)

            await asyncio.gather(writer(("c", "d")), writer(("d", "e")),
                                 writer(("e", "f")))
            assert engine.generation == 3
            assert engine.snapshot().closure("path").rows == solve(
                TC, engine.snapshot().database).rows

        run(scenario())

    def test_readers_overlapping_a_commit_see_consistent_state(self):
        async def scenario():
            engine = await started()
            generations = []

            async def reader():
                for _ in range(20):
                    snapshot = engine.snapshot()
                    answer = snapshot.ask("path(a, X)?")
                    # Every observed answer matches a recompute against
                    # that snapshot's own database: never half-applied.
                    assert answer.rows == {
                        row for row in solve(TC, snapshot.database).rows
                        if row[0] == "a"}
                    generations.append(snapshot.generation)
                    await asyncio.sleep(0)

            async def writer():
                for pair in [("c", "d"), ("d", "e"), ("b", "a")]:
                    async with engine.transaction() as session:
                        session.insert("edge", pair)
                    await asyncio.sleep(0)

            await asyncio.gather(reader(), writer())
            assert generations == sorted(generations)

        run(scenario())


class TestSubscriptions:
    def test_subscription_receives_changes(self):
        async def scenario():
            engine = await started()
            subscription = engine.subscribe("path(a, X)?")
            async with engine.transaction() as session:
                session.insert("edge", ("c", "d"))
            change = await asyncio.wait_for(subscription.__anext__(), 5)
            assert change.generation == 1
            assert change.added == {("a", "d")}
            assert change.removed == frozenset()
            assert change.answer.rows == {("a", "b"), ("a", "c"), ("a", "d")}

            async with engine.transaction() as session:
                session.delete("edge", ("b", "c"))
            change = await asyncio.wait_for(subscription.__anext__(), 5)
            assert change.removed == {("a", "c"), ("a", "d")}

        run(scenario())

    def test_untouched_query_gets_no_push(self):
        async def scenario():
            database = Database.of(
                Relation.of("edge", 2, [("a", "b")]),
                Relation.of("other", 1, [(1,)]),
            )
            engine = await LiveEngine(TC, database).start()
            subscription = subscribe(engine, "path(a, X)?")
            async with engine.transaction() as session:
                session.insert("other", (2,))
            assert engine.generation == 1
            assert subscription.pending == 0

        run(scenario())

    def test_close_ends_iteration(self):
        async def scenario():
            engine = await started()
            subscription = engine.subscribe("path(a, X)?")
            async with engine.transaction() as session:
                session.insert("edge", ("c", "d"))
            subscription.close()
            changes = [change async for change in subscription]
            assert len(changes) == 1  # queued before close still delivered
            # Closed subscriptions receive nothing further.
            async with engine.transaction() as session:
                session.insert("edge", ("d", "e"))
            assert subscription.pending == 0

        run(scenario())


class TestBaselineParity:
    def test_recompute_mode_matches_maintained_mode(self):
        async def scenario():
            pairs = (("a", "b"), ("b", "c"), ("c", "a"))
            maintained = await started(pairs)
            baseline = await started(pairs, config=EvalConfig())
            batches = [
                ({"edge": [("c", "d")]}, {}),
                ({}, {"edge": [("b", "c")]}),
                ({"edge": [("d", "a")]}, {"edge": [("a", "b")]}),
            ]
            for inserts, deletes in batches:
                for engine in (maintained, baseline):
                    async with engine.transaction() as session:
                        for name, rows in inserts.items():
                            session.insert(name, *rows)
                        for name, rows in deletes.items():
                            session.delete(name, *rows)
                left, right = maintained.snapshot(), baseline.snapshot()
                assert left.generation == right.generation
                assert left.relation("edge").rows == right.relation("edge").rows
                assert left.closure("path").rows == right.closure("path").rows
                assert left.ask("path(X, a)?").rows == right.ask("path(X, a)?").rows

        run(scenario())

    def test_session_type_exported(self):
        engine = LiveEngine(TC, tc_db(("a", "b")))

        async def scenario():
            await engine.start()
            assert isinstance(engine.transaction(), Session)

        run(scenario())


class TestServingEdgeCases:
    def test_rollback_after_staging_deletes_of_missing_rows(self):
        async def scenario():
            engine = await started()
            try:
                async with engine.transaction() as session:
                    session.delete("edge", ("never", "inserted"))
                    session.insert("edge", ("c", "d"))
                    raise ValueError("abort the transaction")
            except ValueError:
                pass
            # The block raised, so nothing was committed: the staged
            # delete of a row that never existed (and the insert) are
            # both discarded without touching the engine.
            assert engine.generation == 0
            assert session.pending == 0
            with pytest.raises(RuntimeError, match="rolled back"):
                session.insert("edge", ("d", "e"))
            # The engine stays healthy for the next writer.
            async with engine.transaction() as session:
                session.insert("edge", ("c", "d"))
            assert engine.generation == 1

        run(scenario())

    def test_committed_delete_of_missing_row_is_a_noop(self):
        async def scenario():
            engine = await started()
            async with engine.transaction() as session:
                session.delete("edge", ("never", "inserted"))
            # Nothing changed, so no generation was published.
            assert engine.generation == 0
            assert engine.snapshot().relation("edge").rows == {
                ("a", "b"), ("b", "c")}

        run(scenario())

    def test_subscriber_cancelled_mid_commit(self):
        async def scenario():
            engine = await started()
            subscription = engine.subscribe("path(a, X)?")
            reader = asyncio.create_task(subscription.__anext__())
            await asyncio.sleep(0)  # park the reader on the queue
            reader.cancel()
            async with engine.transaction() as session:
                session.insert("edge", ("c", "d"))
            with pytest.raises(asyncio.CancelledError):
                await reader
            # The cancelled reader neither blocked the commit nor lost
            # the change: it is still queued for the next consumer.
            assert engine.generation == 1
            assert subscription.pending == 1
            change = await asyncio.wait_for(subscription.__anext__(), 5)
            assert change.added == {("a", "d")}
            subscription.close()
            assert [change async for change in subscription] == []
            # Closing after a cancelled read leaves the engine clean:
            # later commits push nothing to the detached subscriber.
            async with engine.transaction() as session:
                session.insert("edge", ("d", "e"))
            assert subscription.pending == 0

        run(scenario())

    def test_close_cancels_open_subscriptions(self):
        async def scenario():
            engine = await started()
            subscription = engine.subscribe("path(a, X)?")
            await engine.close()
            await engine.close()  # idempotent
            with pytest.raises(StopAsyncIteration):
                await subscription.__anext__()
            with pytest.raises(RuntimeError, match="closed"):
                async with engine.transaction() as session:
                    session.insert("edge", ("c", "d"))

        run(scenario())


class TestGuardrails:
    def test_overload_sheds_before_staging(self):
        async def scenario():
            engine = await LiveEngine(TC, tc_db(("a", "b")),
                                      max_pending_commits=1).start()
            await engine._lock.acquire()  # stall the writer
            first = asyncio.create_task(
                engine._commit({"edge": {("b", "c")}}, {}))
            await asyncio.sleep(0)  # first commit now waits on the lock
            with pytest.raises(OverloadError, match="retry later"):
                async with engine.transaction() as session:
                    session.insert("edge", ("c", "d"))
            assert engine.health.commits_shed == 1
            # Shedding rejected the batch before staging: releasing the
            # lock lands only the first commit.
            engine._lock.release()
            await first
            assert engine.generation == 1
            assert engine.snapshot().relation("edge").rows == {
                ("a", "b"), ("b", "c")}

        run(scenario())

    def test_query_timeout_counted_on_health(self, monkeypatch):
        import time

        original = Snapshot.ask

        def slow_ask(self, query, strategy="auto"):
            time.sleep(0.25)
            return original(self, query, strategy=strategy)

        monkeypatch.setattr(Snapshot, "ask", slow_ask)

        async def scenario():
            engine = await LiveEngine(TC, tc_db(("a", "b")),
                                      query_timeout=0.01).start()
            with pytest.raises(QueryTimeoutError, match="serving deadline"):
                await engine.ask_async("path(a, X)?")
            assert engine.health.query_timeouts == 1
            # A generous per-call deadline overrides the engine default.
            answer = await engine.ask_async("path(a, X)?", timeout=30)
            assert answer.rows == {("a", "b")}

        run(scenario())

    def test_negative_pending_bound_rejected(self):
        with pytest.raises(ValueError, match="max_pending_commits"):
            LiveEngine(TC, tc_db(("a", "b")), max_pending_commits=-1)
