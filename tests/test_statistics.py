"""Unit tests for evaluation statistics and the exception hierarchy."""

import pytest

from repro.engine.statistics import EvaluationStatistics, JoinCounters
from repro.exceptions import (
    AnalysisError,
    DatalogSyntaxError,
    EvaluationError,
    NotApplicableError,
    ReproError,
    RuleStructureError,
    SchemaError,
)


class TestEvaluationStatistics:
    def test_record_production_counts_duplicates(self):
        stats = EvaluationStatistics()
        stats.record_production(is_duplicate=False)
        stats.record_production(is_duplicate=True)
        stats.record_production(is_duplicate=True)
        assert stats.derivations == 3
        assert stats.duplicates == 2
        assert stats.new_tuples() == 1

    def test_duplicate_ratio(self):
        stats = EvaluationStatistics()
        assert stats.duplicate_ratio() == 0.0
        stats.record_production(False)
        stats.record_production(True)
        assert stats.duplicate_ratio() == pytest.approx(0.5)

    def test_merge_accumulates_counters(self):
        first = EvaluationStatistics(derivations=3, duplicates=1, iterations=2)
        second = EvaluationStatistics(derivations=5, duplicates=2, iterations=1)
        first.merge(second)
        assert first.derivations == 8 and first.duplicates == 3 and first.iterations == 3

    def test_add_phase_folds_counters_and_keeps_phase(self):
        total = EvaluationStatistics()
        phase = EvaluationStatistics(derivations=4, duplicates=1)
        total.add_phase("inner", phase)
        assert total.derivations == 4
        assert total.phases["inner"] is phase

    def test_summary_and_as_dict(self):
        stats = EvaluationStatistics(derivations=2, duplicates=1, iterations=3,
                                     initial_size=4, result_size=5)
        assert "derivations=2" in stats.summary()
        data = stats.as_dict()
        assert data["result_size"] == 5
        assert data["duplicate_ratio"] == 0.5

    def test_join_counters_defaults(self):
        counters = JoinCounters()
        assert counters.rows_probed == 0
        counters.merge(JoinCounters(rows_probed=2))
        assert counters.rows_probed == 2


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            DatalogSyntaxError,
            RuleStructureError,
            SchemaError,
            EvaluationError,
            NotApplicableError,
            AnalysisError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_syntax_error_formats_location(self):
        error = DatalogSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_syntax_error_without_location(self):
        error = DatalogSyntaxError("unexpected end of input")
        assert error.line is None
        assert "line" not in str(error)
