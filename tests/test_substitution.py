"""Unit tests for repro.datalog.substitution."""

from repro.datalog.atoms import Atom
from repro.datalog.substitution import (
    Substitution,
    match_atom,
    rename_apart,
    renaming_for,
    unify_atoms,
    unify_terms,
)
from repro.datalog.terms import Constant, Variable

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestSubstitutionBasics:
    def test_identity_is_empty(self):
        assert len(Substitution.identity()) == 0

    def test_apply_term(self):
        theta = Substitution.of({X: Y})
        assert theta.apply_term(X) == Y
        assert theta.apply_term(Z) == Z
        assert theta.apply_term(Constant(1)) == Constant(1)

    def test_apply_atom(self):
        theta = Substitution.of({X: Constant(1)})
        assert theta.apply_atom(Atom.of("p", X, Y)) == Atom.of("p", Constant(1), Y)

    def test_apply_atoms(self):
        theta = Substitution.of({X: Z})
        atoms = (Atom.of("p", X), Atom.of("q", Y))
        assert theta.apply_atoms(atoms) == (Atom.of("p", Z), Atom.of("q", Y))

    def test_extend_and_get(self):
        theta = Substitution.identity().extend(X, Y)
        assert theta[X] == Y
        assert theta.get(Z) is None
        assert X in theta

    def test_restrict(self):
        theta = Substitution.of({X: Y, Z: W})
        restricted = theta.restrict([X])
        assert X in restricted and Z not in restricted

    def test_compose_applies_left_then_right(self):
        first = Substitution.of({X: Y})
        second = Substitution.of({Y: Constant(1), Z: W})
        composed = first.compose(second)
        assert composed.apply_term(X) == Constant(1)
        assert composed.apply_term(Z) == W

    def test_domain(self):
        assert Substitution.of({X: Y, Z: W}).domain() == frozenset({X, Z})


class TestUnification:
    def test_unify_equal_constants(self):
        assert unify_terms(Constant(1), Constant(1)) == {}

    def test_unify_distinct_constants_fails(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_unify_variable_with_constant(self):
        assert unify_terms(X, Constant(1)) == {X: Constant(1)}

    def test_unify_atoms_success(self):
        theta = unify_atoms(Atom.of("p", X, Y), Atom.of("p", Constant(1), Z))
        assert theta is not None
        assert theta.apply_atom(Atom.of("p", X, Y)) == theta.apply_atom(
            Atom.of("p", Constant(1), Z)
        )

    def test_unify_atoms_different_predicates(self):
        assert unify_atoms(Atom.of("p", X), Atom.of("q", X)) is None

    def test_unify_atoms_clash(self):
        assert unify_atoms(
            Atom.of("p", Constant(1), X), Atom.of("p", Constant(2), Y)
        ) is None

    def test_unify_repeated_variable(self):
        theta = unify_atoms(Atom.of("p", X, X), Atom.of("p", Constant(1), Y))
        assert theta is not None
        applied = theta.apply_atom(Atom.of("p", X, X))
        assert applied == theta.apply_atom(Atom.of("p", Constant(1), Y))


class TestMatching:
    def test_match_binds_pattern_only(self):
        bindings = match_atom(Atom.of("p", X, Y), Atom.of("p", Constant(1), Constant(2)))
        assert bindings == {X: Constant(1), Y: Constant(2)}

    def test_match_respects_existing_bindings(self):
        base = {X: Constant(1)}
        assert match_atom(Atom.of("p", X), Atom.of("p", Constant(2)), base) is None
        assert match_atom(Atom.of("p", X), Atom.of("p", Constant(1)), base) == base

    def test_match_repeated_variable(self):
        assert match_atom(
            Atom.of("p", X, X), Atom.of("p", Constant(1), Constant(2))
        ) is None

    def test_match_constant_mismatch(self):
        assert match_atom(Atom.of("p", Constant(1)), Atom.of("p", Constant(2))) is None


class TestRenaming:
    def test_renaming_for_produces_fresh_names(self):
        theta = renaming_for([X, Y])
        assert theta[X] != theta[Y]
        assert theta[X].name != "X"

    def test_rename_apart_protects_variables(self):
        atoms = (Atom.of("p", X, Y), Atom.of("q", Y, Z))
        renamed, theta = rename_apart(atoms, protect=[Y])
        assert renamed[0].arguments[1] == Y
        assert renamed[0].arguments[0] != X
        assert X in theta

    def test_rename_apart_consistent_across_atoms(self):
        atoms = (Atom.of("p", X), Atom.of("q", X))
        renamed, _ = rename_apart(atoms)
        assert renamed[0].arguments[0] == renamed[1].arguments[0]
