"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Constant,
    Variable,
    constants_of,
    fresh_variable,
    is_constant,
    is_variable,
    looks_like_variable_name,
    variables_of,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_ordering(self):
        assert Variable("A") < Variable("B")

    def test_str(self):
        assert str(Variable("Foo")) == "Foo"

    def test_repr_contains_name(self):
        assert "Foo" in repr(Variable("Foo"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant("a") != Constant("b")

    def test_int_and_str_distinct(self):
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_str(self):
        assert str(Constant("a")) == "a"
        assert str(Constant(3)) == "3"


class TestPredicatesOnTerms:
    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant(1))

    def test_is_constant(self):
        assert is_constant(Constant(1))
        assert not is_constant(Variable("X"))


class TestFreshVariable:
    def test_fresh_variables_are_distinct(self):
        names = {fresh_variable().name for _ in range(100)}
        assert len(names) == 100

    def test_fresh_variable_uses_hint(self):
        assert fresh_variable("Z").name.startswith("Z#")

    def test_fresh_variable_never_parses_as_user_name(self):
        assert not looks_like_variable_name(fresh_variable().name)


class TestCollections:
    def test_variables_of_preserves_order_and_dedupes(self):
        terms = [Variable("B"), Constant(1), Variable("A"), Variable("B")]
        assert variables_of(terms) == (Variable("B"), Variable("A"))

    def test_constants_of(self):
        terms = [Constant(2), Variable("A"), Constant(1), Constant(2)]
        assert constants_of(terms) == (Constant(2), Constant(1))

    def test_empty_input(self):
        assert variables_of([]) == ()
        assert constants_of([]) == ()


class TestVariableNameConvention:
    @pytest.mark.parametrize("name", ["X", "Xyz", "_tmp", "X1", "A_b'"])
    def test_variable_like_names(self, name):
        assert looks_like_variable_name(name)

    @pytest.mark.parametrize("name", ["x", "1X", "", "foo", "#a"])
    def test_non_variable_like_names(self, name):
        assert not looks_like_variable_name(name)
