"""Tests for the column-oriented batch executor (repro.engine.vectorized).

The correctness bar: ``EvalConfig(executor="batch")`` must produce the
identical result relation, identical derivation/duplicate statistics,
and identical low-level join counters as the slot executor, on every
scenario and on every backend (``serial``/``threads``/``processes``) —
and repeated batch runs must be byte-identical (executor determinism).
"""

from __future__ import annotations

import pytest

from test_parallel import SCENARIOS, scenario_layered_tc, stats_signature

from repro.datalog.parser import parse_rule
from repro.engine.decomposed import decomposed_closure
from repro.engine.naive import naive_closure
from repro.engine.parallel import BACKENDS, EXECUTORS, EvalConfig
from repro.engine.plan import compile_rule
from repro.engine.seminaive import seminaive_closure, solve_linear_recursion
from repro.engine.separable import separable_evaluate
from repro.engine.statistics import EvaluationStatistics
from repro.engine.vectorized import execute_batch
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.index import HashIndex
from repro.storage.relation import Relation
from repro.storage.selection import EqualitySelection


def batch_config(backend: str = "serial") -> EvalConfig:
    if backend == "serial":
        return EvalConfig(executor="batch")
    return EvalConfig(executor="batch", backend=backend, max_workers=2,
                      partitions=3)


def run_seminaive(scenario: str, config: EvalConfig | None):
    rules, database, initial = SCENARIOS[scenario]()
    database = Database(dict(database.relations))
    statistics = EvaluationStatistics()
    relation = seminaive_closure(rules, initial, database, statistics,
                                 config=config)
    return relation, statistics


def full_signature(statistics: EvaluationStatistics):
    """Everything, including the low-level join counters."""
    return (stats_signature(statistics), statistics.joins.rows_probed,
            statistics.joins.bindings_extended)


# ----------------------------------------------------------------------
# Batch vs rows parity
# ----------------------------------------------------------------------


class TestBatchParity:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_serial_batch_matches_rows_exactly(self, scenario):
        rows_rel, rows_stats = run_seminaive(scenario, None)
        batch_rel, batch_stats = run_seminaive(scenario, batch_config())
        assert batch_rel.rows == rows_rel.rows
        # Bit-identical statistics, probe counters included.
        assert batch_stats.as_dict() == rows_stats.as_dict()
        assert full_signature(batch_stats) == full_signature(rows_stats)

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_batch_composes_with_parallel_backends(self, scenario, backend):
        rows_rel, rows_stats = run_seminaive(scenario, None)
        batch_rel, batch_stats = run_seminaive(scenario, batch_config(backend))
        assert batch_rel.rows == rows_rel.rows
        assert stats_signature(batch_stats) == stats_signature(rows_stats)

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_three_batch_runs_identical(self, scenario):
        outcomes = []
        for _ in range(3):
            relation, statistics = run_seminaive(scenario, batch_config())
            canonical = repr(relation.sorted_rows()).encode()
            outcomes.append((canonical, full_signature(statistics)))
        assert outcomes[0] == outcomes[1] == outcomes[2]


# ----------------------------------------------------------------------
# Round-trip through all four fixpoint drivers
# ----------------------------------------------------------------------


class TestDriverRoundTrip:
    def test_naive_batch_matches_rows(self):
        rules, database, initial = scenario_layered_tc()

        def run(config):
            stats = EvaluationStatistics()
            relation = naive_closure(
                rules, initial, Database(dict(database.relations)), stats,
                config=config,
            )
            return relation, stats

        rows_rel, rows_stats = run(None)
        batch_rel, batch_stats = run(batch_config())
        assert batch_rel.rows == rows_rel.rows
        assert batch_stats.as_dict() == rows_stats.as_dict()

    def test_decomposed_batch_matches_rows(self, tc_rules):
        first, second = tc_rules
        q = Relation.of("q", 2, [(i, i + 1) for i in range(8)])
        r = Relation.of("r", 2, [(i, i + 1) for i in range(8)])
        initial = Relation.of("p", 2, [(0, 0), (3, 3)])

        def run(config):
            stats = EvaluationStatistics()
            relation = decomposed_closure(
                [(first,), (second,)], initial, Database.of(q, r), stats,
                config=config,
            )
            return relation, stats

        rows_rel, rows_stats = run(None)
        batch_rel, batch_stats = run(batch_config())
        assert batch_rel.rows == rows_rel.rows
        assert batch_stats.as_dict() == rows_stats.as_dict()

    def test_separable_batch_matches_rows(self):
        outer = (parse_rule("reach(X, Y) :- left(X, U), reach(U, Y)."),)
        inner = (parse_rule("reach(X, Y) :- reach(X, V), right(V, Y)."),)
        left = Relation.of("left", 2, [(i, i + 1) for i in range(10)])
        right = Relation.of("right", 2, [(i, i + 1) for i in range(10)])
        initial = Relation.of("reach", 2, [(i, i) for i in range(11)])
        selection = EqualitySelection(0, 0)

        def run(config):
            stats = EvaluationStatistics()
            relation = separable_evaluate(
                outer, inner, selection, initial, Database.of(left, right),
                stats, config=config,
            )
            return relation, stats

        rows_rel, rows_stats = run(None)
        batch_rel, batch_stats = run(batch_config())
        assert batch_rel.rows == rows_rel.rows
        assert batch_stats.as_dict() == rows_stats.as_dict()

    def test_solve_linear_recursion_batch_covers_exit_rules(self):
        from repro.datalog.atoms import Predicate
        from repro.datalog.programs import LinearRecursion

        recursion = LinearRecursion(
            Predicate("path", 2),
            (parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."),),
            (parse_rule("path(X, Y) :- base(X, Y)."),),
        )
        edge = Relation.of("edge", 2, [(i, i + 1) for i in range(6)])
        base = Relation.of("base", 2, [(i, i) for i in range(7)])

        def run(config):
            stats = EvaluationStatistics()
            relation = solve_linear_recursion(
                recursion, Database.of(edge, base), stats, config=config,
            )
            return relation, stats

        rows_rel, rows_stats = run(None)
        batch_rel, batch_stats = run(batch_config())
        assert batch_rel.rows == rows_rel.rows
        assert batch_stats.as_dict() == rows_stats.as_dict()


# ----------------------------------------------------------------------
# Rule shapes the fixpoint scenarios do not reach
# ----------------------------------------------------------------------


def pairs_to_multiset(pairs):
    return sorted((row, count) for row, count in pairs)


def rows_to_multiset(emissions):
    from collections import Counter

    return sorted(Counter(emissions).items())


class TestRuleShapes:
    def assert_batch_matches_rows(self, rule_text, database, overrides=None):
        from repro.engine.statistics import JoinCounters

        rule = parse_rule(rule_text)
        plan = compile_rule(rule, database, overrides)
        rows_counters = JoinCounters()
        emissions = plan.execute(database, overrides, counters=rows_counters)
        batch_counters = JoinCounters()
        pairs = execute_batch(plan, database, overrides,
                              counters=batch_counters)
        assert pairs_to_multiset(pairs) == rows_to_multiset(emissions)
        assert batch_counters == rows_counters
        return pairs

    def test_fact_rule(self):
        pairs = self.assert_batch_matches_rows("p(1, 2).", Database.of())
        assert pairs == [((1, 2), 1)]

    def test_equality_only_body(self):
        database = Database.of(Relation.of("q", 1, [(3,), (4,)]))
        self.assert_batch_matches_rows("p(X, Y) :- q(X), Y = 7.", database)
        self.assert_batch_matches_rows("p(X) :- q(X), X = 3.", database)

    def test_repeated_variable_within_atom(self):
        q = Relation.of("q", 2, [(1, 1), (1, 2), (2, 2)])
        database = Database.of(q)
        pairs = self.assert_batch_matches_rows("p(X) :- q(X, X).", database)
        assert {row for row, _ in pairs} == {(1,), (2,)}

    def test_constant_in_body_atom(self):
        q = Relation.of("q", 2, [(1, 5), (2, 5), (3, 6)])
        database = Database.of(q)
        pairs = self.assert_batch_matches_rows("p(X) :- q(X, 5).", database)
        assert {row for row, _ in pairs} == {(1,), (2,)}

    def test_duplicate_emissions_collapse(self):
        # Projection makes two q rows emit the same head tuple.
        q = Relation.of("q", 2, [(1, 5), (1, 6)])
        database = Database.of(q)
        pairs = self.assert_batch_matches_rows("p(X) :- q(X, Y).", database)
        assert pairs == [((1,), 2)]

    def test_variable_equality_filter(self):
        q = Relation.of("q", 2, [(1, 1), (1, 2), (3, 3)])
        database = Database.of(q)
        pairs = self.assert_batch_matches_rows(
            "p(X, Y) :- q(X, Y), X = Y.", database
        )
        assert {row for row, _ in pairs} == {(1, 1), (3, 3)}

    def test_cartesian_product_multiplicities(self):
        q = Relation.of("q", 1, [(1,), (2,)])
        r = Relation.of("r", 1, [(7,), (8,), (9,)])
        database = Database.of(q, r)
        pairs = self.assert_batch_matches_rows("p(X) :- q(X), r(Y).", database)
        assert pairs_to_multiset(pairs) == [((1,), 3), ((2,), 3)]

    def test_none_is_a_legal_column_value(self):
        q = Relation.of("q", 2, [(None, 1), (None, None), (2, None)])
        database = Database.of(q)
        pairs = self.assert_batch_matches_rows("p(X) :- q(X, X).", database)
        assert {row for row, _ in pairs} == {(None,)}

    def test_unsafe_equality_raises_only_when_reached(self):
        rule = parse_rule("p(X) :- q(X), Y = Z.")
        empty = Database.of(Relation.of("q", 1, []))
        plan = compile_rule(rule, empty)
        assert execute_batch(plan, empty) == []
        populated = Database.of(Relation.of("q", 1, [(1,)]))
        plan = compile_rule(rule, populated)
        with pytest.raises(EvaluationError, match="no bound side"):
            execute_batch(plan, populated)

    def test_unsafe_equality_with_live_head_variable(self):
        # X is bound only by the unsafe equality, so its slot is live
        # for the head but never defined by any step; the batch executor
        # must not try to materialise it as a column (regression test).
        rule = parse_rule("p(X) :- g1(Z), e2(0, Z), W = X.")
        populated = Database.of(
            Relation.of("g1", 1, [(1,)]), Relation.of("e2", 2, [(0, 1)])
        )
        plan = compile_rule(rule, populated)
        with pytest.raises(EvaluationError, match="no bound side"):
            execute_batch(plan, populated)
        empty = Database.of(Relation.of("g1", 1, []), Relation.of("e2", 2, []))
        plan = compile_rule(rule, empty)
        assert execute_batch(plan, empty) == []

    def test_override_arity_mismatch_raises(self):
        database = Database.of(Relation.of("q", 2, [(1, 2)]))
        plan = compile_rule(parse_rule("p(X) :- q(X, Y)."), database)
        with pytest.raises(EvaluationError, match="arity"):
            execute_batch(plan, database,
                          overrides={"q": Relation.of("q", 3, [])})


# ----------------------------------------------------------------------
# explain() on batch plans
# ----------------------------------------------------------------------


class TestExplainBatch:
    def test_batch_pipeline_listing(self):
        database = Database.of(
            Relation.of("edge", 2, [(0, 1)])
        )
        plan = compile_rule(
            parse_rule("path(X, Y) :- edge(X, Z), path(Z, Y)."), database
        )
        text = plan.explain(executor="batch")
        lines = text.splitlines()
        assert lines[0].startswith("batch-scan path(Z, Y)")
        assert lines[1].startswith("batch-probe edge(X, Z)")
        assert "fused-emit path(X, Y)" in lines[1]
        assert lines[-1] == "collapse -> (row, count) pairs"

    def test_rows_explain_unchanged_and_default(self):
        plan = compile_rule(parse_rule("p(X) :- q(X)."))
        assert plan.explain() == plan.explain(executor="rows")
        assert plan.explain().startswith("scan q(X)")

    def test_fact_plan(self):
        plan = compile_rule(parse_rule("p(1)."))
        assert plan.explain(executor="batch") == plan.explain()

    def test_equality_steps_described(self):
        plan = compile_rule(parse_rule("p(X, Y) :- q(X), Y = 7."))
        text = plan.explain(executor="batch")
        assert "batch-extend" in text
        assert "emit p(X, Y)" in text

    def test_unknown_executor_rejected(self):
        plan = compile_rule(parse_rule("p(X) :- q(X)."))
        with pytest.raises(ValueError, match="executor"):
            plan.explain(executor="simd")


# ----------------------------------------------------------------------
# EvalConfig validation and round-trip
# ----------------------------------------------------------------------


class TestEvalConfigExecutor:
    def test_constants(self):
        assert EXECUTORS == ("rows", "batch")
        assert BACKENDS == ("serial", "threads", "processes")

    def test_defaults(self):
        config = EvalConfig()
        assert config.executor == "rows"
        assert config.backend == "serial"
        assert not config.batched()
        assert not config.is_parallel()

    def test_batch_executor_accepted(self):
        config = EvalConfig(executor="batch", backend="processes")
        assert config.batched()
        assert config.is_parallel()

    def test_unknown_executor_and_backend_rejected(self):
        with pytest.raises(ValueError):
            EvalConfig(executor="gpu")
        with pytest.raises(ValueError):
            EvalConfig(backend="gpu")

    def test_legacy_backend_as_executor_normalised(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            config = EvalConfig(executor="threads", max_workers=2)
        assert config.backend == "threads"
        assert config.executor == "rows"
        assert config.is_parallel()

    def test_ambiguous_legacy_mix_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            EvalConfig(executor="threads", backend="processes")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_backends_with_batch(self, backend):
        """EvalConfig(executor='batch') survives the full driver path."""
        rows_rel, rows_stats = run_seminaive("two-sided-paths", None)
        batch_rel, batch_stats = run_seminaive(
            "two-sided-paths", batch_config(backend)
        )
        assert batch_rel.rows == rows_rel.rows
        assert stats_signature(batch_stats) == stats_signature(rows_stats)


# ----------------------------------------------------------------------
# Bulk probe APIs
# ----------------------------------------------------------------------


class TestBulkAPIs:
    def test_relation_columns_aligned(self):
        relation = Relation.of("q", 3, [(1, "a", True), (2, "b", False)])
        first, second, third = relation.columns()
        assert sorted(zip(first, second, third)) == [
            (1, "a", True), (2, "b", False)
        ]
        (just_last,) = relation.columns([2])
        assert sorted(just_last, key=str) == [False, True]

    def test_relation_columns_out_of_range(self):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            Relation.of("q", 2, [(1, 2)]).columns([2])

    def test_hash_index_lookup_batch(self):
        relation = Relation.of("q", 2, [(1, 10), (1, 11), (2, 20)])
        index = HashIndex(relation, (0,))
        one, two, missing = index.lookup_batch([(1,), (2,), (9,)])
        assert sorted(one) == [(1, 10), (1, 11)]
        assert two == [(2, 20)]
        assert missing == []

    def test_hash_index_buckets_view(self):
        relation = Relation.of("q", 2, [(1, 10), (2, 20)])
        index = HashIndex(relation, (0,))
        assert index.buckets[(1,)] == index.lookup((1,))
        assert set(index.buckets) == {(1,), (2,)}
