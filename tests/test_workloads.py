"""Tests for the workload generators and canonical scenarios."""

import random

from repro.core.commutativity import commute_by_definition, sufficient_condition
from repro.datalog.atoms import Predicate
from repro.workloads import scenarios
from repro.workloads.graphs import (
    chain_edges,
    cycle_edges,
    grid_edges,
    layered_dag_edges,
    random_graph_edges,
    tree_edges,
)
from repro.workloads.relations import random_relation, random_unary_relation, relation_from_pairs
from repro.workloads.rulegen import (
    random_commuting_pair,
    random_restricted_rule,
    random_rule_pair,
)


class TestGraphGenerators:
    def test_chain(self):
        edges = chain_edges(5)
        assert len(edges) == 5 and (0, 1) in edges and (4, 5) in edges

    def test_cycle(self):
        edges = cycle_edges(4)
        assert len(edges) == 4 and (3, 0) in edges
        assert cycle_edges(0).is_empty()

    def test_tree(self):
        edges = tree_edges(3, branching=2)
        assert len(edges) == 2 + 4 + 8
        parents = {source for source, _ in edges.rows}
        assert 0 in parents

    def test_grid(self):
        edges = grid_edges(3, 3)
        assert len(edges) == 12
        assert (0, 1) in edges and (0, 3) in edges

    def test_random_graph_is_deterministic_per_seed(self):
        first = random_graph_edges(20, 40, rng=random.Random(1))
        second = random_graph_edges(20, 40, rng=random.Random(1))
        assert first.rows == second.rows
        assert all(source != target for source, target in first.rows)

    def test_layered_dag_goes_forward_only(self):
        edges = layered_dag_edges(4, 3, rng=random.Random(2))
        for source, target in edges.rows:
            assert target // 3 == source // 3 + 1


class TestRelationGenerators:
    def test_random_relation_size_and_domain(self):
        relation = random_relation("r", 3, 50, domain_size=10, rng=random.Random(3))
        assert len(relation) == 50 and relation.arity == 3
        assert all(0 <= value < 10 for row in relation.rows for value in row)

    def test_random_relation_respects_capacity(self):
        relation = random_relation("r", 1, 100, domain_size=5, rng=random.Random(4))
        assert len(relation) == 5

    def test_random_unary_relation(self):
        relation = random_unary_relation("u", 4, domain_size=10, rng=random.Random(5))
        assert len(relation) == 4 and relation.arity == 1

    def test_relation_from_pairs(self):
        assert relation_from_pairs("e", [(1, 2)]).rows == frozenset({(1, 2)})


class TestRuleGenerators:
    def test_restricted_rule_is_in_restricted_class(self, rng):
        for _ in range(10):
            rule = random_restricted_rule(4, 3, rng)
            assert rule.is_linear_recursive()
            assert rule.in_restricted_class()
            assert rule.is_constant_free()

    def test_random_pair_shares_only_the_recursive_predicate(self, rng):
        first, second = random_rule_pair(3, 2, rng)
        first_names = {atom.name for atom in first.nonrecursive_atoms()}
        second_names = {atom.name for atom in second.nonrecursive_atoms()}
        assert not (first_names & second_names)

    def test_commuting_pair_actually_commutes(self, rng):
        for _ in range(6):
            first, second = random_commuting_pair(3, rng)
            assert sufficient_condition(first, second).satisfied
            assert commute_by_definition(first, second)

    def test_commuting_pair_stays_in_restricted_class(self, rng):
        first, second = random_commuting_pair(4, rng)
        assert first.in_restricted_class() and second.in_restricted_class()


class TestScenarios:
    def test_all_scenario_rules_are_linear(self):
        rules = [
            scenarios.example_5_1_rule(),
            scenarios.figure_2_rule(),
            *scenarios.example_5_2_rules(),
            *scenarios.example_5_3_rules(),
            *scenarios.example_5_4_rules(),
            scenarios.example_6_1_rule(),
            scenarios.example_6_2_rule(),
            scenarios.example_6_3_rule(),
        ]
        assert all(rule.is_linear_recursive() for rule in rules)

    def test_programs_extract_linear_recursions(self):
        cases = [
            (scenarios.two_sided_transitive_closure_program(), Predicate("path", 2), 2),
            (scenarios.same_generation_program(), Predicate("sg", 2), 1),
            (scenarios.separable_selection_program(), Predicate("reach", 2), 2),
            (scenarios.redundant_buys_program(), Predicate("buys", 2), 1),
            (scenarios.noncommuting_program(), Predicate("t", 2), 2),
        ]
        for program, predicate, expected_operators in cases:
            recursion = program.linear_recursion_of(predicate)
            assert recursion.operator_count() == expected_operators
            assert len(recursion.exit_rules) >= 1
